#include "tune/knob_space.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/planner.hpp"
#include "util/rng.hpp"

namespace latticesched::tune {

namespace {

/// %.17g round-trips every double exactly; integral values print without
/// a decimal point, which keeps the serialized form stable under
/// parse→serialize cycles.
std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Knobs whose semantics are integral (budgets, depths, counts) — the
/// random sampler snaps them; everything else stays continuous.
bool integral_knob(const KnobSpec& spec) {
  return spec.name != "sa_initial_temperature";
}

}  // namespace

std::vector<KnobSpec> KnobSpace::knobs_for(const std::string& backend) const {
  std::vector<KnobSpec> out;
  for (const KnobSpec& spec : knobs_) {
    if (spec.backend == backend) out.push_back(spec);
  }
  return out;
}

const KnobSpec* KnobSpace::find(const std::string& backend,
                                const std::string& name) const {
  for (const KnobSpec& spec : knobs_) {
    if (spec.backend == backend && spec.name == name) return &spec;
  }
  return nullptr;
}

const KnobSpace& KnobSpace::global() {
  // Ranges bracket the defaults by the spans the benches actually sweep;
  // log-scale strides for budget-like knobs (a node budget is interesting
  // at 1/4x and 4x, not at ±1).
  static const KnobSpace space({
      {"tiling", "node_limit", 20'000'000.0, 10'000.0, 80'000'000.0, 4.0,
       true, "torus-search placement budget before giving up a period"},
      {"tiling", "max_spawn_depth", 0.0, 0.0, 8.0, 2.0, false,
       "parallel search spawn depth (0 = auto from pool width)"},
      {"annealing", "sa_max_iters", 200'000.0, 1'000.0, 2'000'000.0, 4.0,
       true, "Metropolis steps per color-count attempt"},
      {"annealing", "sa_initial_temperature", 2.0, 0.25, 16.0, 2.0, true,
       "starting temperature of the geometric cooling schedule"},
      {"region-greedy", "regions", 1.0, 1.0, 64.0, 4.0, true,
       "spatial shard count of the streaming conflict-block planner"},
      {"region-greedy", "region_halo", -1.0, -1.0, 16.0, 2.0, false,
       "shard halo width (-1 = auto: the interference reach)"},
      {"mobile", "node_limit", 20'000'000.0, 10'000.0, 80'000'000.0, 4.0,
       true, "torus-search placement budget of the underlying tiling"},
      {"mobile", "max_spawn_depth", 0.0, 0.0, 8.0, 2.0, false,
       "parallel search spawn depth (0 = auto from pool width)"},
      // Session-level knobs: declared (serialized, listed, benched) but
      // applied by PlanSession across replans, not per plan request —
      // the tuner holds them at their defaults during a search.
      {"", "graph_patch_dirty_denominator", 0.0, 0.0, 64.0, 4.0, true,
       "incremental-graph rebuild threshold (0 = library default)"},
      {"", "threads", 0.0, 0.0, 64.0, 2.0, true,
       "shared pool width (0 = hardware concurrency)"},
  });
  return space;
}

double TunedConfig::get(const std::string& name, double fallback) const {
  for (const auto& [knob, value] : values) {
    if (knob == name) return value;
  }
  return fallback;
}

void TunedConfig::set(const std::string& name, double value) {
  for (auto& [knob, stored] : values) {
    if (knob == name) {
      stored = value;
      return;
    }
  }
  values.emplace_back(name, value);
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::string TunedConfig::serialize() const {
  std::string out = "backend=" + backend;
  for (const auto& [knob, value] : values) {
    out += ';';
    out += knob;
    out += '=';
    out += format_value(value);
  }
  return out;
}

std::optional<TunedConfig> TunedConfig::parse(const std::string& text) {
  TunedConfig config;
  std::size_t pos = 0;
  bool saw_backend = false;
  while (pos <= text.size()) {
    const std::size_t semi = std::min(text.find(';', pos), text.size());
    const std::string token = text.substr(pos, semi - pos);
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "backend") {
      if (saw_backend || value.empty()) return std::nullopt;
      config.backend = value;
      saw_backend = true;
    } else {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return std::nullopt;
      config.set(key, parsed);
    }
    if (semi == text.size()) break;
    pos = semi + 1;
  }
  if (!saw_backend) return std::nullopt;
  return config;
}

TunedConfig default_config(const std::string& backend) {
  TunedConfig config;
  config.backend = backend;
  for (const KnobSpec& spec : KnobSpace::global().knobs_for(backend)) {
    config.set(spec.name, spec.def);
  }
  return config;
}

void apply_config(const TunedConfig& config, PlanRequest* request) {
  for (const auto& [knob, value] : config.values) {
    if (knob == "node_limit") {
      request->search.node_limit = static_cast<std::uint64_t>(value);
    } else if (knob == "max_spawn_depth") {
      request->search.max_spawn_depth = static_cast<std::uint32_t>(value);
    } else if (knob == "sa_max_iters") {
      request->sa.max_iters = static_cast<std::uint64_t>(value);
    } else if (knob == "sa_initial_temperature") {
      request->sa.initial_temperature = value;
    } else if (knob == "regions") {
      request->regions = static_cast<std::size_t>(value);
    } else if (knob == "region_halo") {
      request->region_halo = static_cast<std::int64_t>(value);
    }
    // Unknown or session-level knobs fall through untouched: a cache
    // entry written by a future version with more knobs still applies
    // the ones this version understands.
  }
}

std::vector<TunedConfig> neighbors(const TunedConfig& config) {
  std::vector<TunedConfig> out;
  for (const KnobSpec& spec :
       KnobSpace::global().knobs_for(config.backend)) {
    const double current = config.get(spec.name, spec.def);
    for (const int direction : {-1, +1}) {
      double next = spec.log_scale
                        ? (direction < 0 ? current / spec.step
                                         : current * spec.step)
                        : current + direction * spec.step;
      next = std::clamp(next, spec.min, spec.max);
      if (integral_knob(spec)) next = std::round(next);
      if (next == current) continue;
      TunedConfig neighbor = config;
      neighbor.set(spec.name, next);
      out.push_back(std::move(neighbor));
    }
  }
  return out;
}

TunedConfig random_config(const std::string& backend, Rng& rng) {
  TunedConfig config;
  config.backend = backend;
  for (const KnobSpec& spec : KnobSpace::global().knobs_for(backend)) {
    double value;
    if (spec.log_scale && spec.min > 0.0) {
      const double lo = std::log(spec.min);
      const double hi = std::log(spec.max);
      value = std::exp(lo + rng.next_double() * (hi - lo));
    } else {
      value = spec.min + rng.next_double() * (spec.max - spec.min);
    }
    value = std::clamp(value, spec.min, spec.max);
    if (integral_knob(spec)) value = std::round(value);
    config.set(spec.name, value);
  }
  return config;
}

}  // namespace latticesched::tune
