// Declarative knob space of the auto-tuning subsystem.
//
// The planner's configuration surface — backend choice × torus search
// budget × annealing schedule × region sharding × session-level
// incremental-replan knobs — is a product of per-backend subspaces.
// KnobSpace is the one registry describing that product: every tunable
// knob with its owning backend, default, range and hill-climb stride,
// so the tuner (tune/tuner.hpp), the driver's `--list-backends` output
// and the report currency all read the same declaration.  TunedConfig
// is a point in the space — a delegate backend plus knob values —
// serialized token-safe (no spaces) so it survives the whitespace-
// tokenized cache entries and the CSV report columns unquoted.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace latticesched {

struct PlanRequest;
class Rng;

namespace tune {

/// One tunable knob of a backend's subspace.
struct KnobSpec {
  /// Backend that consumes the knob ("" = session-level: declared and
  /// serialized, but applied by PlanSession rather than per-request —
  /// the tuner holds these at their defaults during a search).
  std::string backend;
  std::string name;
  double def = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Hill-climb neighbor stride: additive step, or the multiplicative
  /// factor when log_scale (budget-like knobs move in decades, not
  /// increments).
  double step = 0.0;
  bool log_scale = false;
  std::string doc;
};

/// The registry of every tunable knob.  Immutable after construction;
/// global() is the process-wide instance the built-in backends populate.
class KnobSpace {
 public:
  explicit KnobSpace(std::vector<KnobSpec> knobs)
      : knobs_(std::move(knobs)) {}

  /// All knobs, grouped by backend in backend-registration order
  /// (session-level knobs last).
  const std::vector<KnobSpec>& knobs() const { return knobs_; }

  /// The subspace a single backend contributes (possibly empty — the
  /// greedy/dsatur/welsh-powell/tdma backends have no knobs).
  std::vector<KnobSpec> knobs_for(const std::string& backend) const;

  /// The spec of `backend`'s knob `name`, or nullptr.
  const KnobSpec* find(const std::string& backend,
                       const std::string& name) const;

  /// Process-wide knob space with the built-in backends' subspaces.
  static const KnobSpace& global();

 private:
  std::vector<KnobSpec> knobs_;
};

/// A point in the knob space: a delegate backend plus the knob values its
/// PlanRequest is built with.  `values` stays sorted by knob name so
/// serialization (and therefore cache keys and report cells) is canonical
/// regardless of insertion order.
struct TunedConfig {
  std::string backend;
  std::vector<std::pair<std::string, double>> values;

  double get(const std::string& name, double fallback) const;
  void set(const std::string& name, double value);

  /// Token-safe canonical form: "backend=tiling;node_limit=20000000".
  /// No spaces or commas, so it embeds in whitespace-tokenized cache
  /// entries and unquoted CSV cells alike.
  std::string serialize() const;

  /// Inverse of serialize(); nullopt on malformed input (a corrupt cache
  /// line degrades to a recompute, never a crash).
  static std::optional<TunedConfig> parse(const std::string& text);

  bool operator==(const TunedConfig& other) const {
    return backend == other.backend && values == other.values;
  }
  bool operator!=(const TunedConfig& other) const {
    return !(*this == other);
  }
};

/// `backend`'s subspace at its defaults (the tuner's candidate 0 and the
/// comparison point of every tuned-vs-default table).
TunedConfig default_config(const std::string& backend);

/// Applies `config`'s knob values onto the request fields the delegate
/// backend reads (search/sa/regions/region_halo).  Session-level knobs
/// ("" backend) are skipped — they have no per-request field.
void apply_config(const TunedConfig& config, PlanRequest* request);

/// Deterministic hill-climb neighborhood: each knob nudged one stride in
/// each direction (clamped to its range; nudges that land back on the
/// same value are dropped), in knob order.
std::vector<TunedConfig> neighbors(const TunedConfig& config);

/// Seeded random point in `backend`'s subspace (log-scale knobs sample
/// uniformly in the exponent, others uniformly in the range, snapped to
/// integers for integral knobs).
TunedConfig random_config(const std::string& backend, Rng& rng);

}  // namespace tune
}  // namespace latticesched
