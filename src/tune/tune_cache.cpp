#include "tune/tune_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/persist.hpp"

namespace latticesched::tune {

namespace {

constexpr const char* kDiskMagic = "latticesched-tune-cache";

/// Winner/observation features match exactly (the features are derived,
/// not measured, so equal requests produce bit-equal doubles); density
/// gets an epsilon for the division.
constexpr double kDensityEps = 1e-9;

/// Families must be single whitespace-free tokens — both the entry body
/// and the report currency tokenize on whitespace.
std::string canonical_family(const std::string& family) {
  std::string out = family.empty() ? std::string("default") : family;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool features_match(double an, double ar, double ad, double bn, double br,
                    double bd) {
  return an == bn && ar == br && std::fabs(ad - bd) <= kDensityEps;
}

}  // namespace

std::string TuneCache::entry_path(const std::string& dir,
                                  const std::string& family) {
  const std::string canon = canonical_family(family);
  const std::uint64_t hash =
      persist::fnv1a_bytes(canon.data(), canon.size());
  char name[40];
  std::snprintf(name, sizeof name, "tn_%016llx.entry",
                static_cast<unsigned long long>(hash));
  return dir + "/" + name;
}

std::optional<TunedConfig> TuneCache::find(const Fingerprint& fp) {
  const std::string key = canonical_family(fp.family);
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[key];
  load_family_locked(key, &fam);
  for (const Winner& w : fam.winners) {
    if (!features_match(w.n, w.radius, w.density, fp.n, fp.radius,
                        fp.density)) {
      continue;
    }
    std::optional<TunedConfig> config = TunedConfig::parse(w.config);
    if (!config.has_value()) continue;  // corrupt line: fall through
    ++stats_.hits;
    if (fam.from_disk) ++stats_.disk_hits;
    return config;
  }
  ++stats_.misses;
  return std::nullopt;
}

void TuneCache::record_winner(const Fingerprint& fp,
                              const TunedConfig& config) {
  const std::string key = canonical_family(fp.family);
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[key];
  load_family_locked(key, &fam);  // never clobber disk state unseen
  const std::string serialized = config.serialize();
  bool replaced = false;
  for (Winner& w : fam.winners) {
    if (features_match(w.n, w.radius, w.density, fp.n, fp.radius,
                       fp.density)) {
      w.config = serialized;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    fam.winners.push_back({fp.n, fp.radius, fp.density, serialized});
  }
  store_family_locked(key, fam);
}

void TuneCache::record_observation(const Fingerprint& fp,
                                   const TunedConfig& config,
                                   std::uint32_t period, double work,
                                   double wall_ms) {
  const std::string key = canonical_family(fp.family);
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[key];
  load_family_locked(key, &fam);
  fam.observations.push_back({fp.n, fp.radius, fp.density, period, work,
                              wall_ms, config.serialize()});
  // Bound the entry size: a long-lived fleet cache keeps the freshest
  // observations, which also best reflect the current code's costs.
  constexpr std::size_t kMaxObservations = 256;
  if (fam.observations.size() > kMaxObservations) {
    fam.observations.erase(fam.observations.begin());
  }
}

std::optional<TuneCache::Prediction> TuneCache::predict(
    const Fingerprint& fp, const TunedConfig& config) {
  const std::string key = canonical_family(fp.family);
  const std::string serialized = config.serialize();
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[key];
  load_family_locked(key, &fam);
  double weight_sum = 0.0;
  Prediction out;
  for (const Observation& o : fam.observations) {
    if (o.config != serialized) continue;
    const double dn = (o.n - fp.n) / std::max(1.0, fp.n);
    const double dr = (o.radius - fp.radius) / std::max(1.0, fp.radius);
    const double dd =
        (o.density - fp.density) / std::max(kDensityEps, fp.density);
    const double dist2 = dn * dn + dr * dr + dd * dd;
    if (dist2 < 1e-18) {
      // Exact fingerprint: the observation IS the prediction.
      return Prediction{static_cast<double>(o.period), o.work};
    }
    const double w = 1.0 / dist2;
    out.period += w * static_cast<double>(o.period);
    out.work += w * o.work;
    weight_sum += w;
  }
  if (weight_sum <= 0.0) return std::nullopt;
  out.period /= weight_sum;
  out.work /= weight_sum;
  return out;
}

void TuneCache::note_search() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.searches;
}

void TuneCache::note_trials(std::uint64_t measured) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.trials += measured;
}

void TuneCache::set_persist_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  persist_dir_ = dir;
  // Families touched before the dir was set must re-probe the disk.
  for (auto& [name, fam] : families_) fam.probed_disk = false;
}

TuneCache::Stats TuneCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = families_.size();
  return s;
}

void TuneCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void TuneCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

void TuneCache::load_family_locked(const std::string& family, Family* slot) {
  if (slot->probed_disk || persist_dir_.empty()) return;
  slot->probed_disk = true;
  const std::string path = entry_path(persist_dir_, family);
  std::string content;
  switch (persist::load_entry(path, kDiskMagic, kDiskFormatVersion,
                              &content)) {
    case persist::EntryStatus::kMissing:
      return;
    case persist::EntryStatus::kStaleVersion:
      std::fprintf(stderr,
                   "tune-cache: skipping %s (stale format, expected v%d)\n",
                   path.c_str(), kDiskFormatVersion);
      return;
    case persist::EntryStatus::kCorrupt:
      std::fprintf(stderr,
                   "tune-cache: corrupt entry %s; evicting and retuning\n",
                   path.c_str());
      ++stats_.checksum_failures;
      (void)std::remove(path.c_str());
      return;
    case persist::EntryStatus::kOk:
      break;
  }
  try {
    std::istringstream is(content);
    std::string magic, tag, stored_family;
    int version = 0;
    is >> magic >> version;  // envelope validated by load_entry
    if (!(is >> tag >> stored_family) || tag != "family") {
      throw std::invalid_argument("bad family line");
    }
    if (stored_family != family) {
      // Hash collision between family names: ignore, don't evict — the
      // other family still owns the file.
      std::fprintf(stderr,
                   "tune-cache: skipping %s (family mismatch)\n",
                   path.c_str());
      return;
    }
    std::size_t winner_count = 0;
    if (!(is >> tag >> winner_count) || tag != "winners" ||
        winner_count > 100'000) {
      throw std::invalid_argument("bad winners line");
    }
    std::vector<Winner> winners;
    winners.reserve(winner_count);
    for (std::size_t i = 0; i < winner_count; ++i) {
      Winner w;
      if (!(is >> tag >> w.n >> w.radius >> w.density >> w.config) ||
          tag != "winner") {
        throw std::invalid_argument("bad winner line");
      }
      winners.push_back(std::move(w));
    }
    std::size_t obs_count = 0;
    if (!(is >> tag >> obs_count) || tag != "observations" ||
        obs_count > 100'000) {
      throw std::invalid_argument("bad observations line");
    }
    std::vector<Observation> observations;
    observations.reserve(obs_count);
    for (std::size_t i = 0; i < obs_count; ++i) {
      Observation o;
      if (!(is >> tag >> o.n >> o.radius >> o.density >> o.period >>
            o.work >> o.wall_ms >> o.config) ||
          tag != "obs") {
        throw std::invalid_argument("bad obs line");
      }
      observations.push_back(std::move(o));
    }
    if (!(is >> tag) || tag != "end") {
      throw std::invalid_argument("truncated entry");
    }
    slot->winners = std::move(winners);
    slot->observations = std::move(observations);
    slot->from_disk = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "tune-cache: skipping corrupt entry %s (%s); retuning\n",
                 path.c_str(), e.what());
  }
}

void TuneCache::store_family_locked(const std::string& family,
                                    const Family& fam) {
  if (persist_dir_.empty()) return;
  std::ostringstream os;
  os << kDiskMagic << ' ' << kDiskFormatVersion << '\n';
  os << "family " << family << '\n';
  os << "winners " << fam.winners.size() << '\n';
  for (const Winner& w : fam.winners) {
    os << "winner " << format_double(w.n) << ' ' << format_double(w.radius)
       << ' ' << format_double(w.density) << ' ' << w.config << '\n';
  }
  os << "observations " << fam.observations.size() << '\n';
  for (const Observation& o : fam.observations) {
    os << "obs " << format_double(o.n) << ' ' << format_double(o.radius)
       << ' ' << format_double(o.density) << ' ' << o.period << ' '
       << format_double(o.work) << ' ' << format_double(o.wall_ms) << ' '
       << o.config << '\n';
  }
  os << "end\n";
  std::string content = os.str();
  content += persist::checksum_line(content);
  if (write_corruption_hook_) write_corruption_hook_(content);
  (void)persist::write_entry_atomic(entry_path(persist_dir_, family),
                                    content, "tune-cache");
}

}  // namespace latticesched::tune
