// Persistent tuning cache: warm-starting the auto backend across
// processes and fleets.
//
// The tuner's product is knowledge — "for scenarios shaped like THIS,
// that config won" — and recomputing it per invocation would waste the
// entire point of tuning.  TuneCache keys that knowledge by a scenario-
// family fingerprint (family label + n/radius/density features), keeps
// both the winning configs and the raw trial observations (the cost
// model's training data), and persists per-family entries next to the
// TilingCache's: same --cache-dir, versioned + checksummed text files,
// atomic rename, corrupt-tolerant loads — all through the shared
// util/persist.hpp envelope.  Entry files are `tn_<hash>.entry`, so the
// TilingCache's `tc_*`-scoped GC sweep never collects them.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tune/knob_space.hpp"

namespace latticesched::tune {

/// Scenario-family fingerprint: which cached knowledge applies to a
/// request.  `family` buckets entries (one cache file per family); the
/// numeric features locate the request inside the bucket for exact
/// winner matches and cost-model interpolation.
struct Fingerprint {
  std::string family;   ///< scenario label, or derived shape tag
  double n = 0.0;       ///< deployment size
  double radius = 0.0;  ///< interference reach
  double density = 0.0; ///< sensors per bounding-box cell
};

class TuneCache {
 public:
  static constexpr int kDiskFormatVersion = 1;

  struct Stats {
    std::uint64_t hits = 0;        ///< find() served a winner
    std::uint64_t misses = 0;      ///< find() had none (search follows)
    std::uint64_t disk_hits = 0;   ///< hits whose family came off disk
    std::uint64_t searches = 0;    ///< tuning searches run (note_search)
    std::uint64_t trials = 0;      ///< candidate configs measured
    std::uint64_t checksum_failures = 0;  ///< corrupt entries evicted
    std::uint64_t entries = 0;     ///< families resident in memory
  };

  /// One measured trial: where in the family's feature space, which
  /// config, and what it cost (period = schedule quality, work = the
  /// deterministic effort proxy, wall_ms informational only).
  struct Observation {
    double n = 0.0;
    double radius = 0.0;
    double density = 0.0;
    std::uint32_t period = 0;
    double work = 0.0;
    double wall_ms = 0.0;
    std::string config;  ///< TunedConfig::serialize() form
  };

  /// Cost-model output: predicted (period, work) of a config at a
  /// fingerprint, interpolated from recorded observations.
  struct Prediction {
    double period = 0.0;
    double work = 0.0;
  };

  TuneCache() = default;
  TuneCache(const TuneCache&) = delete;
  TuneCache& operator=(const TuneCache&) = delete;

  /// The winning config recorded for `fp`'s family at (exactly) its
  /// features, loading the family from disk on first touch.  Counts a
  /// hit or a miss; a miss is the tuner's cue to search.
  std::optional<TunedConfig> find(const Fingerprint& fp);

  /// Records (and persists) `config` as the winner at `fp`.
  void record_winner(const Fingerprint& fp, const TunedConfig& config);

  /// Records a measured trial — the cost model's training data.
  /// Persisted together with the winners on the next record_winner.
  void record_observation(const Fingerprint& fp, const TunedConfig& config,
                          std::uint32_t period, double work, double wall_ms);

  /// Nearest-fingerprint cost model: inverse-distance-weighted mean of
  /// the same-config observations in `fp`'s family over normalized
  /// (n, radius, density).  nullopt when the family has no observation
  /// of `config` — an unpriceable candidate must be measured.
  std::optional<Prediction> predict(const Fingerprint& fp,
                                    const TunedConfig& config);

  /// Tuner accounting (flows cache → service → wire → --cache-stats).
  void note_search();
  void note_trials(std::uint64_t measured);

  /// Directory for persistent entries ("" = in-memory only).  Loads
  /// lazily per family; safe to set before or after first use.
  void set_persist_dir(const std::string& dir);
  const std::string& persist_dir() const { return persist_dir_; }

  Stats stats() const;
  void reset_stats();

  /// Drops every resident family (stats untouched, disk untouched).
  void clear();

  /// Test/chaos seam: mutates serialized entry bytes AFTER the checksum
  /// is computed, modeling disk corruption the loader must catch.
  void set_write_corruption_hook(std::function<void(std::string&)> hook) {
    write_corruption_hook_ = std::move(hook);
  }

  /// Entry file path of `family` under `dir` (exposed for tests).
  static std::string entry_path(const std::string& dir,
                                const std::string& family);

 private:
  struct Winner {
    double n = 0.0;
    double radius = 0.0;
    double density = 0.0;
    std::string config;
  };
  struct Family {
    std::vector<Winner> winners;
    std::vector<Observation> observations;
    bool probed_disk = false;  ///< disk load already attempted
    bool from_disk = false;    ///< family content came off disk
  };

  /// Loads `family` from disk into `slot` if present (caller holds mu_).
  void load_family_locked(const std::string& family, Family* slot);
  /// Persists `family` (caller holds mu_; no-op without a persist dir).
  void store_family_locked(const std::string& family, const Family& fam);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Family> families_;
  std::string persist_dir_;
  Stats stats_;
  std::function<void(std::string&)> write_corruption_hook_;
};

}  // namespace latticesched::tune
