#include "tune/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>

#include "core/planner.hpp"
#include "graph/interference.hpp"
#include "util/persist.hpp"
#include "util/rng.hpp"

namespace latticesched::tune {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// Deterministic work proxy of a measured trial — the effort axis of the
/// cost order.  Wall time would rank identically-shaped runs differently
/// across machines and loads, so each delegate gets a machine-independent
/// proxy instead: torus backends report serial search nodes (trials force
/// use_parallel = false, so the count is exact), annealing reports its
/// iteration budget, and the graph/TDMA backends — whose cost is linear
/// in the input — report the deployment size.
double work_proxy(const TunedConfig& config, const PlanRequest& trial,
                  const TorusSearchStats& stats) {
  if (config.backend == "tiling" || config.backend == "mobile") {
    return static_cast<double>(stats.nodes);
  }
  if (config.backend == "annealing") {
    return static_cast<double>(trial.sa.max_iters) *
           static_cast<double>(std::max<std::uint64_t>(1, trial.sa.restarts));
  }
  return trial.deployment ? static_cast<double>(trial.deployment->size())
                          : 0.0;
}

/// The deterministic cost order: a plan that worked beats one that
/// failed; then fewer slots; then less work; ties keep the incumbent
/// (earlier candidate), so the default config only loses to a strict
/// improvement.
bool strictly_better(const TrialOutcome& challenger,
                     const TrialOutcome& incumbent) {
  if (challenger.ok != incumbent.ok) return challenger.ok;
  if (!challenger.ok) return false;
  if (challenger.effective_period != incumbent.effective_period) {
    return challenger.effective_period < incumbent.effective_period;
  }
  return challenger.work < incumbent.work;
}

}  // namespace

Fingerprint fingerprint_of(const PlanRequest& request) {
  if (request.deployment == nullptr) {
    throw std::invalid_argument("fingerprint_of: null deployment");
  }
  const Deployment& d = *request.deployment;
  Fingerprint fp;
  fp.n = static_cast<double>(d.size());
  fp.radius = static_cast<double>(interference_reach(d));

  std::size_t dim = 0;
  double volume = 1.0;
  if (d.size() > 0) {
    dim = d.position(0).dim();
    for (std::size_t axis = 0; axis < dim; ++axis) {
      std::int64_t lo = d.position(0)[axis];
      std::int64_t hi = lo;
      for (std::size_t i = 1; i < d.size(); ++i) {
        lo = std::min(lo, d.position(i)[axis]);
        hi = std::max(hi, d.position(i)[axis]);
      }
      volume *= static_cast<double>(hi - lo + 1);
    }
    fp.density = volume > 0.0 ? fp.n / volume : 0.0;
  }

  if (!request.tune_family.empty()) {
    fp.family = request.tune_family;
  } else {
    fp.family = "d" + std::to_string(dim) + "c" +
                std::to_string(request.channels) + "p" +
                std::to_string(d.prototiles().size());
  }
  return fp;
}

Tuner::Tuner(const PlannerRegistry* registry, TuneCache* cache)
    : registry_(registry), cache_(cache) {
  if (registry_ == nullptr || cache_ == nullptr) {
    throw std::invalid_argument("Tuner: null registry or cache");
  }
}

TuneOutcome Tuner::search(const PlanRequest& request,
                          const TuneOptions& options) const {
  const Clock::time_point start = Clock::now();
  const Fingerprint fp = fingerprint_of(request);
  cache_->note_search();

  // Delegate pool: every ordinary backend that supports the request, in
  // registration order (tiling first — its default is THE default).
  std::vector<std::string> delegates;
  for (const std::string& name : registry_->names()) {
    const Planner* p = registry_->find(name);
    if (p == nullptr || !p->in_default_set() || !p->supports(request)) {
      continue;
    }
    delegates.push_back(name);
  }
  if (delegates.empty()) {
    throw std::invalid_argument("tuner: no delegate backend supports this");
  }

  // Candidate queue: each delegate's defaults up front, refilled with
  // hill-climb neighbors of the incumbent and seeded random probes.
  std::vector<TunedConfig> queue;
  std::set<std::string> seen;
  for (const std::string& name : delegates) {
    TunedConfig config = default_config(name);
    if (seen.insert(config.serialize()).second) {
      queue.push_back(std::move(config));
    }
  }
  const std::string canon_family = fp.family;
  Rng rng(options.seed ^
          persist::fnv1a_bytes(canon_family.data(), canon_family.size()));
  const std::size_t trial_budget = std::max<std::size_t>(1, options.trials);
  // Generation cap: random probes may all collide with `seen`, so bound
  // total candidate generations to guarantee termination.
  const std::size_t max_generated =
      std::max<std::size_t>(trial_budget * 4, 16);
  std::size_t generated = queue.size();

  TuneOutcome out;
  TrialOutcome incumbent;
  bool have_incumbent = false;

  std::size_t next = 0;
  while (out.trials.size() < trial_budget) {
    if (options.budget_ms > 0 &&
        elapsed_ms(start) >= static_cast<double>(options.budget_ms)) {
      break;
    }
    if (next >= queue.size()) {
      if (generated >= max_generated) break;
      bool refilled = false;
      if (have_incumbent) {
        for (TunedConfig& n : neighbors(incumbent.config)) {
          if (seen.insert(n.serialize()).second) {
            queue.push_back(std::move(n));
            refilled = true;
          }
        }
      }
      if (!refilled) {
        const std::string& backend =
            delegates[rng.next_below(delegates.size())];
        TunedConfig probe = random_config(backend, rng);
        if (seen.insert(probe.serialize()).second) {
          queue.push_back(std::move(probe));
        }
      }
      ++generated;
      continue;
    }
    const TunedConfig candidate = queue[next++];

    // Cost-model pruning: skip measuring a candidate whose predicted
    // cost is strictly worse than the incumbent's measured cost (with a
    // margin for interpolation noise).  Never prunes before the first
    // measurement, so the default config is always measured.
    if (have_incumbent && incumbent.ok) {
      if (const auto pred = cache_->predict(fp, candidate)) {
        const double period_gap =
            pred->period -
            static_cast<double>(incumbent.effective_period);
        if (period_gap > 0.5 ||
            (period_gap > -0.5 && pred->work > incumbent.work * 1.25)) {
          ++out.pruned;
          continue;
        }
      }
    }

    // Measure through the ordinary plan pipeline, minus everything
    // that would perturb the measurement or the shared caches: no
    // verification (quality is the slot count, not the checker), no
    // tiling cache (a memoized search would report zero nodes), serial
    // search (parallel node counts under a truncating budget are
    // schedule-dependent), no warm state.
    const Planner* planner = registry_->find(candidate.backend);
    if (planner == nullptr) continue;
    PlanRequest trial = request;
    trial.verify = false;
    trial.tiling_cache = nullptr;
    trial.tune_cache = nullptr;
    trial.warm = nullptr;
    trial.region_warm = nullptr;
    trial.region_stats = nullptr;
    TorusSearchStats search_stats;
    trial.search.stats = &search_stats;
    trial.search.use_parallel = false;
    apply_config(candidate, &trial);

    const Clock::time_point t0 = Clock::now();
    const PlanResult result = planner->plan(trial);
    TrialOutcome trial_outcome;
    trial_outcome.config = candidate;
    trial_outcome.ok = result.ok;
    trial_outcome.effective_period = result.effective_period();
    trial_outcome.work = work_proxy(candidate, trial, search_stats);
    trial_outcome.wall_ms = elapsed_ms(t0);
    if (trial_outcome.ok) {
      cache_->record_observation(fp, candidate,
                                 trial_outcome.effective_period,
                                 trial_outcome.work,
                                 trial_outcome.wall_ms);
    }
    if (!have_incumbent || strictly_better(trial_outcome, incumbent)) {
      incumbent = trial_outcome;
      have_incumbent = true;
    }
    out.trials.push_back(std::move(trial_outcome));
  }

  cache_->note_trials(out.trials.size());
  out.best = have_incumbent ? incumbent.config : default_config(delegates[0]);
  cache_->record_winner(fp, out.best);
  return out;
}

}  // namespace latticesched::tune
