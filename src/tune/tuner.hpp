// Seeded knob-space search: how the auto backend picks a config.
//
// The tuner enumerates candidate (backend, knob-values) points — the
// default config first, then every other supporting backend at its
// defaults, then hill-climb neighbors of the incumbent interleaved with
// seeded random probes — and measures each through the ordinary
// Planner::plan path.  Cost is DETERMINISTIC lexicographic
// (plan ok, effective period, work proxy, candidate order): wall time
// never enters the comparison, so the same seed and trial budget pick
// the same config on any machine at any load.  The cost model
// (TuneCache::predict) prunes candidates whose predicted cost is
// strictly worse than the incumbent's measured cost before paying for a
// measurement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tune/knob_space.hpp"
#include "tune/tune_cache.hpp"

namespace latticesched {

struct PlanRequest;
class PlannerRegistry;

namespace tune {

/// The fingerprint of `request`: family from request.tune_family (or a
/// derived d<dim>c<channels>p<prototiles> shape tag), features from the
/// deployment (size, interference reach, bounding-box density).
Fingerprint fingerprint_of(const PlanRequest& request);

struct TuneOptions {
  /// Candidate configs to measure (>= 1; the default config is always
  /// candidate 0, so the chosen config never loses to the default).
  std::size_t trials = 8;
  /// Wall-clock cutoff in ms checked between measurements (0 = none).
  /// Inherently timing-dependent: determinism holds only when the trial
  /// budget binds first.
  std::uint64_t budget_ms = 0;
  /// Seed of the random-probe stream (mixed with the family hash, so
  /// different families explore differently under one seed).
  std::uint64_t seed = 0x5eed;
};

/// One measured candidate.
struct TrialOutcome {
  TunedConfig config;
  bool ok = false;
  std::uint32_t effective_period = 0;
  double work = 0.0;     ///< deterministic effort proxy (see tuner.cpp)
  double wall_ms = 0.0;  ///< measured wall time, informational only
};

struct TuneOutcome {
  TunedConfig best;
  std::vector<TrialOutcome> trials;  ///< in measurement order
  std::size_t pruned = 0;  ///< candidates skipped via the cost model
};

class Tuner {
 public:
  /// Both pointers must outlive the Tuner; `cache` receives the
  /// search/trial accounting and every observation.
  Tuner(const PlannerRegistry* registry, TuneCache* cache);

  /// Runs a bounded search for `request` and records winner +
  /// observations under its fingerprint.  The returned best config is
  /// always at least as good (by the deterministic cost order) as the
  /// default config, which is measured first.
  TuneOutcome search(const PlanRequest& request,
                     const TuneOptions& options) const;

 private:
  const PlannerRegistry* registry_;
  TuneCache* cache_;
};

}  // namespace tune
}  // namespace latticesched
