#include "util/ascii_canvas.hpp"

#include <stdexcept>

namespace latticesched {

AsciiCanvas::AsciiCanvas(std::size_t width, std::size_t height, char fill)
    : width_(width), height_(height),
      rows_(height, std::string(width, fill)) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("AsciiCanvas: zero dimension");
  }
}

bool AsciiCanvas::in_bounds(std::int64_t x, std::int64_t y) const {
  return x >= 0 && y >= 0 && static_cast<std::size_t>(x) < width_ &&
         static_cast<std::size_t>(y) < height_;
}

void AsciiCanvas::put(std::int64_t x, std::int64_t y, char c) {
  if (in_bounds(x, y)) {
    rows_[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = c;
  }
}

void AsciiCanvas::put_text(std::int64_t x, std::int64_t y,
                           const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    put(x + static_cast<std::int64_t>(i), y, s[i]);
  }
}

void AsciiCanvas::hline(std::int64_t x, std::int64_t y, std::size_t len,
                        char c) {
  for (std::size_t i = 0; i < len; ++i) {
    put(x + static_cast<std::int64_t>(i), y, c);
  }
}

void AsciiCanvas::vline(std::int64_t x, std::int64_t y, std::size_t len,
                        char c) {
  for (std::size_t i = 0; i < len; ++i) {
    put(x, y + static_cast<std::int64_t>(i), c);
  }
}

char AsciiCanvas::at(std::int64_t x, std::int64_t y) const {
  if (!in_bounds(x, y)) return '\0';
  return rows_[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
}

std::string AsciiCanvas::to_string() const {
  std::string out;
  out.reserve((width_ + 1) * height_);
  for (std::size_t y = height_; y-- > 0;) {
    out += rows_[y];
    out += '\n';
  }
  return out;
}

}  // namespace latticesched
