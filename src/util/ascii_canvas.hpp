// Fixed-size character canvas used to render lattice schedules, tilings and
// Voronoi sketches as ASCII diagrams (the reproduction of the paper's
// Figures 3 and 5 is emitted through this class).
//
// Coordinates follow the mathematical convention: x grows to the right and
// y grows upward; the canvas flips y when rendering so the origin row
// appears at the bottom of the printed block.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace latticesched {

class AsciiCanvas {
 public:
  /// Creates a canvas of `width` x `height` characters filled with `fill`.
  AsciiCanvas(std::size_t width, std::size_t height, char fill = ' ');

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  /// Writes a single character; out-of-bounds writes are silently clipped
  /// (convenient when sketching shapes that straddle the border).
  void put(std::int64_t x, std::int64_t y, char c);

  /// Writes a string starting at (x, y), growing in +x; clipped.
  void put_text(std::int64_t x, std::int64_t y, const std::string& s);

  /// Draws a horizontal run of `c` of length `len` starting at (x, y).
  void hline(std::int64_t x, std::int64_t y, std::size_t len, char c = '-');

  /// Draws a vertical run of `c` of length `len` starting at (x, y).
  void vline(std::int64_t x, std::int64_t y, std::size_t len, char c = '|');

  char at(std::int64_t x, std::int64_t y) const;

  /// Renders top row last (y flipped), each row newline-terminated.
  std::string to_string() const;

 private:
  std::size_t width_, height_;
  std::vector<std::string> rows_;  // rows_[y] is the row at height y
  bool in_bounds(std::int64_t x, std::int64_t y) const;
};

}  // namespace latticesched
