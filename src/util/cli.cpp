#include "util/cli.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace latticesched {

std::vector<std::string> split_csv_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream is(csv);
  while (std::getline(is, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  if (flags_.count(name) != 0) {
    throw std::invalid_argument("CliParser: duplicate flag --" + name);
  }
  flags_[name] = Flag{default_value, default_value, help, std::nullopt,
                      std::nullopt};
}

void CliParser::add_int_flag(const std::string& name,
                             std::int64_t default_value,
                             std::int64_t min_value,
                             const std::string& help) {
  add_flag(name, std::to_string(default_value), help);
  flags_[name].min_value = min_value;
}

void CliParser::add_int_flag(const std::string& name,
                             std::int64_t default_value,
                             std::int64_t min_value,
                             std::int64_t max_value,
                             const std::string& help) {
  add_int_flag(name, default_value, min_value, help);
  flags_[name].max_value = max_value;
}

void CliParser::parse(int argc, const char* const* argv) {
  // Unknown flags are collected and reported together, so every typo in
  // an invocation surfaces in one error instead of the first only.
  std::vector<std::string> unknown;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      unknown.push_back("--" + name);
      continue;
    }
    if (!have_value) {
      // Registered booleans (default "true"/"false") keep the bare
      // `--flag` = true form; any other flag takes the next argument as
      // its value (`--flag value`), which stays unambiguous because a
      // value-flag can never be passed bare.
      const std::string& dflt = it->second.default_value;
      const bool is_boolean = dflt == "true" || dflt == "false";
      if (is_boolean) {
        value = "true";
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        // Refusing a `--`-prefixed token as the value turns
        // `--out --format json` into an error instead of silently
        // binding "--format" as the output path (values never start
        // with "--"; negative numbers are a single dash).
        throw std::invalid_argument("flag --" + name + " expects a value");
      }
    }
    it->second.value = value;
  }
  // Range-constrained integer flags (add_int_flag) are validated here so
  // their violations land in the SAME single error as the unknown flags.
  std::vector<std::string> problems;
  if (!unknown.empty()) {
    // Typo hints ride inside the same single message: each unknown flag
    // is followed by the nearest registered flag, when one is close
    // enough to plausibly be what the user meant.
    std::vector<std::string> registered;
    registered.reserve(flags_.size());
    for (const auto& [name, flag] : flags_) registered.push_back(name);
    std::string msg =
        unknown.size() == 1 ? "unknown flag " : "unknown flags: ";
    for (std::size_t i = 0; i < unknown.size(); ++i) {
      if (i > 0) msg += ", ";
      msg += unknown[i];
      const std::string hint =
          suggest_nearest(unknown[i].substr(2), registered);
      if (!hint.empty()) msg += " (did you mean --" + hint + "?)";
    }
    problems.push_back(std::move(msg));
  }
  for (const auto& [name, flag] : flags_) {
    if (!flag.min_value.has_value()) continue;
    bool ok = true;
    std::int64_t parsed = 0;
    try {
      std::size_t pos = 0;
      parsed = std::stoll(flag.value, &pos);
      ok = pos == flag.value.size();
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok) {
      problems.push_back("flag --" + name +
                         ": not an integer: " + flag.value);
    } else if (parsed < *flag.min_value) {
      problems.push_back("flag --" + name + ": must be >= " +
                         std::to_string(*flag.min_value) + ", got " +
                         flag.value);
    } else if (flag.max_value.has_value() && parsed > *flag.max_value) {
      problems.push_back("flag --" + name + ": must be <= " +
                         std::to_string(*flag.max_value) + ", got " +
                         flag.value);
    }
  }
  if (!problems.empty()) {
    std::string msg;
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (i > 0) msg += "; ";
      msg += problems[i];
    }
    throw std::invalid_argument(msg);
  }
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("CliParser: flag --" + name +
                                " was never registered");
  }
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name).value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  }
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  }
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string& v = find(name).value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no" || v.empty()) return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + v);
}

std::string suggest_nearest(const std::string& name,
                            const std::vector<std::string>& candidates) {
  const auto edit_distance = [](const std::string& a, const std::string& b) {
    // Levenshtein with a rolling row; the inputs are flag-sized.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t diag = row[0];
      row[0] = i;
      for (std::size_t j = 1; j <= b.size(); ++j) {
        const std::size_t up = row[j];
        row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                           diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
        diag = up;
      }
    }
    return row[b.size()];
  };
  const std::size_t budget =
      std::max<std::size_t>(2, name.size() / 3);
  std::string best;
  std::size_t best_distance = budget + 1;
  for (const std::string& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: "
       << (flag.default_value.empty() ? "\"\"" : flag.default_value) << ")\n"
       << "      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace latticesched
