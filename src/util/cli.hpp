// Minimal command-line flag parser for the example programs and the
// latticesched driver.
//
// Supports `--name=value`, space-separated `--name value` (for flags
// whose default is not a boolean literal), and boolean `--name` forms.
// Unrecognized flags raise — with EVERY unknown flag listed in one error,
// so a mistyped invocation is fixed in one round trip instead of one flag
// at a time (silently using defaults is an easy way to invalidate an
// experiment).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace latticesched {

/// Splits "a,b,c" on commas into non-empty tokens ("" -> {}); the one
/// tokenizer behind backend lists and the driver's sweep flags.
std::vector<std::string> split_csv_list(const std::string& csv);

/// The candidate closest to `name` by edit distance, or "" when nothing
/// is plausibly a typo (distance > max(2, |name| / 3)).  Ties resolve
/// to the earliest candidate, so registry order makes the suggestion
/// deterministic.  Drives the driver's "did you mean ...?" hints for
/// --scenario and --backends.
std::string suggest_nearest(const std::string& name,
                            const std::vector<std::string>& candidates);

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Registers a flag with a default value and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Registers an integer flag with an inclusive minimum.  parse()
  /// validates the supplied value and reports a violation (non-integer
  /// or below `min_value`) in the same single error that lists unknown
  /// flags, so `--workers 0 --bogys` is fixed in one round trip.
  void add_int_flag(const std::string& name, std::int64_t default_value,
                    std::int64_t min_value, const std::string& help);

  /// Range form: inclusive [min_value, max_value] (e.g. a TCP port is
  /// [1, 65535], so --port 0 and --port 65536 both land in the single
  /// joined parse error).
  void add_int_flag(const std::string& name, std::int64_t default_value,
                    std::int64_t min_value, std::int64_t max_value,
                    const std::string& help);

  /// Parses argv; throws std::invalid_argument on unknown flags or
  /// malformed input — unknown flags carry a "did you mean --...?" hint
  /// when a registered flag is within suggest_nearest's edit budget.
  /// Recognizes --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  std::string help_text() const;

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    /// Inclusive bounds enforced at parse() time (add_int_flag).
    std::optional<std::int64_t> min_value;
    std::optional<std::int64_t> max_value;
  };
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  const Flag& find(const std::string& name) const;
};

}  // namespace latticesched
