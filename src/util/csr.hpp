// Compressed sparse row storage for small-integer adjacency.
//
// The engine stores every "list of ids per thing" (coverage points per
// sensor, sensors per lattice point, listeners per transmitter) as one
// flat value buffer plus an offsets array — one allocation total, cache-
// linear traversal, and trivially buildable in two counting passes.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace latticesched {

struct CsrU32 {
  /// offsets.size() == rows + 1; row r occupies
  /// values[offsets[r] .. offsets[r+1]).
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> values;

  std::size_t rows() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::span<const std::uint32_t> row(std::size_t r) const {
    return {values.data() + offsets[r],
            values.data() + offsets[r + 1]};
  }
  std::size_t row_size(std::size_t r) const {
    return offsets[r + 1] - offsets[r];
  }

  /// Classic two-pass build: call begin_counting, bump count(r) for every
  /// (r, value) pair, call finish_counting, then push(r, value) for the
  /// same pairs in any order.
  void begin_counting(std::size_t n_rows) {
    offsets.assign(n_rows + 1, 0);
  }
  void count(std::size_t r) { ++offsets[r + 1]; }
  void finish_counting() {
    std::uint64_t total = 0;
    for (std::size_t r = 1; r < offsets.size(); ++r) {
      total += offsets[r];
      if (total > 0xFFFFFFFFull) {
        // A wrapped prefix sum would undersize `values` and turn push()
        // into out-of-bounds writes; fail loudly instead.
        throw std::length_error("CsrU32: more than 2^32-1 total entries");
      }
      offsets[r] = static_cast<std::uint32_t>(total);
    }
    values.resize(offsets.back());
    cursor_.assign(offsets.begin(), offsets.end() - 1);
  }
  void push(std::size_t r, std::uint32_t v) { values[cursor_[r]++] = v; }

 private:
  std::vector<std::uint32_t> cursor_;
};

}  // namespace latticesched
