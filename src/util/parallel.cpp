#include "util/parallel.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>

namespace latticesched {

namespace {

thread_local bool t_in_parallel_region = false;

std::size_t env_default_threads() {
  if (const char* env = std::getenv("LATTICESCHED_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::atomic<std::size_t> g_thread_override{0};

}  // namespace

std::size_t parallel_threads() {
  const std::size_t o = g_thread_override.load(std::memory_order_relaxed);
  if (o != 0) return o;
  static const std::size_t env = env_default_threads();
  return env;
}

void set_parallel_threads(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t r = 0; r < workers; ++r) {
    threads_.emplace_back([this, r] { worker_loop(r); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (rank >= engaged_) continue;  // not needed this region
      body = body_;
    }
    std::exception_ptr err;
    try {
      t_in_parallel_region = true;
      (*body)(rank + 1);
    } catch (...) {
      err = std::current_exception();
    }
    t_in_parallel_region = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err) errors_.push_back(err);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t parallelism,
                     const std::function<void(std::size_t)>& body) {
  if (parallelism == 0) return;
  // Nested regions (or a serial pool) run the whole body on rank 0: the
  // body's own index-claiming loop then processes every item inline.
  if (t_in_parallel_region || threads_.empty() || parallelism == 1) {
    body(0);
    return;
  }
  // Distinct application threads may hit the shared pool concurrently;
  // regions are serialized so one region's helpers never decrement
  // another's active count.  (Workers themselves never reach this lock —
  // the inline path above catches them.)
  std::lock_guard<std::mutex> region_lock(region_mu_);
  const std::size_t helpers = std::min(parallelism - 1, threads_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    engaged_ = helpers;
    active_ = helpers;
    errors_.clear();
    ++generation_;
  }
  cv_work_.notify_all();
  std::exception_ptr caller_err;
  try {
    t_in_parallel_region = true;
    body(0);
  } catch (...) {
    caller_err = std::current_exception();
  }
  t_in_parallel_region = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
    if (!caller_err && !errors_.empty()) caller_err = errors_.front();
  }
  if (caller_err) std::rethrow_exception(caller_err);
}

ThreadPool& ThreadPool::global() {
  // The pool is sized once per distinct target; changing the target swaps
  // in a fresh pool (old pools are kept alive until process exit so any
  // stale references stay valid — targets change a handful of times per
  // process, in tests).
  static std::mutex mu;
  static std::size_t built_for = 0;
  static ThreadPool* pool = nullptr;
  static std::vector<std::unique_ptr<ThreadPool>> retired;
  std::lock_guard<std::mutex> lock(mu);
  const std::size_t want = parallel_threads();
  if (pool == nullptr || built_for != want) {
    retired.emplace_back(std::make_unique<ThreadPool>(want - 1));
    pool = retired.back().get();
    built_for = want;
  }
  return *pool;
}

void detail::parallel_for_dispatch(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& fn, std::size_t grain) {
  const std::size_t n = end - begin;
  std::atomic<std::size_t> next{begin};
  ThreadPool::global().run(
      (n + grain - 1) / grain, [&](std::size_t) {
        for (;;) {
          const std::size_t lo =
              next.fetch_add(grain, std::memory_order_relaxed);
          if (lo >= end) return;
          const std::size_t hi = std::min(end, lo + grain);
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        }
      });
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------------

namespace detail {

namespace {

using Task = std::function<void(TaskContext&)>;

/// Chase–Lev work-stealing deque of Task* (Chase & Lev, SPAA 2005).  The
/// owner pushes/pops at the bottom; thieves take from the top.  All
/// cross-thread hand-off goes through std::atomic operations (the slot
/// store/load pair is release/acquire, top/bottom are seq_cst), so the
/// implementation is exact under the C++ memory model AND visible to
/// ThreadSanitizer — no fences TSan cannot model.  A slot may be read by
/// a slow thief after the owner recycled it; the value is discarded when
/// the subsequent top CAS fails, and because slots are atomic the stale
/// read is well-defined.
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t capacity = 64) {
    buffers_.push_back(std::make_unique<Buffer>(capacity));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  /// Owner only.
  void push(Task* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(task, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only; LIFO.  nullptr when empty.
  Task* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty: undo
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = buf->slot(b).load(std::memory_order_acquire);
    if (t < b) return task;  // more than one entry: no race with thieves
    // Exactly one entry: race the thieves for it via the top CAS.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won ? task : nullptr;
  }

  /// Any thread; FIFO (oldest = biggest subtree).  nullptr when empty or
  /// the race was lost.
  Task* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    Task* task = buf->slot(t).load(std::memory_order_acquire);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to the owner or another thief
    }
    return task;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), slots(new std::atomic<Task*>[cap]) {}
    std::atomic<Task*>& slot(std::int64_t i) {
      return slots[static_cast<std::size_t>(i) & (capacity - 1)];
    }
    const std::size_t capacity;  // power of two
    std::unique_ptr<std::atomic<Task*>[]> slots;
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    buffers_.push_back(std::make_unique<Buffer>(old->capacity * 2));
    Buffer* next = buffers_.back().get();
    for (std::int64_t i = t; i < b; ++i) {
      next->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    }
    buffer_.store(next, std::memory_order_release);
    return next;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  /// Every buffer ever used, retired on growth but kept alive for the
  /// deque's lifetime so a slow thief's stale buffer pointer stays valid
  /// (growth happens a handful of times; the waste is bounded).  Only
  /// the owner mutates this vector (push/grow are owner-only).
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace

class TaskSchedulerImpl {
 public:
  explicit TaskSchedulerImpl(std::size_t workers) : deques_(workers) {
    for (auto& d : deques_) d = std::make_unique<ChaseLevDeque>();
  }

  ~TaskSchedulerImpl() {
    // Abandoned tasks (exception unwinding) are still owned by the deques.
    for (auto& d : deques_) {
      while (Task* t = d->steal()) delete t;
    }
  }

  void spawn(std::size_t worker, Task task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    deques_[worker]->push(new Task(std::move(task)));
  }

  void worker_body(std::size_t rank) {
    TaskContext ctx(this, rank);
    std::size_t idle_rounds = 0;
    for (;;) {
      Task* task = deques_[rank]->pop();
      if (task == nullptr) task = try_steal(rank);
      if (task != nullptr) {
        idle_rounds = 0;
        execute(task, ctx);
        continue;
      }
      if (pending_.load(std::memory_order_acquire) == 0 ||
          abort_.load(std::memory_order_acquire)) {
        return;
      }
      // Out of work but tasks are still running elsewhere (and may spawn
      // more): yield, then back off to short sleeps so an oversubscribed
      // host (more workers than cores) is not thrashed by the spin.
      if (++idle_rounds < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  void run_root(Task root) {
    pending_.store(1, std::memory_order_relaxed);
    deques_[0]->push(new Task(std::move(root)));
    const std::size_t workers = deques_.size();
    if (workers <= 1) {
      worker_body(0);
    } else {
      ThreadPool::global().run(workers,
                               [this](std::size_t r) { worker_body(r); });
    }
    if (error_) std::rethrow_exception(error_);
  }

  TaskTreeStats stats() const {
    return TaskTreeStats{tasks_.load(std::memory_order_relaxed),
                         steals_.load(std::memory_order_relaxed)};
  }

 private:
  Task* try_steal(std::size_t rank) {
    const std::size_t n = deques_.size();
    for (std::size_t i = 1; i < n; ++i) {
      Task* task = deques_[(rank + i) % n]->steal();
      if (task != nullptr) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
    return nullptr;
  }

  void execute(Task* task, TaskContext& ctx) {
    tasks_.fetch_add(1, std::memory_order_relaxed);
    try {
      if (!abort_.load(std::memory_order_relaxed)) (*task)(ctx);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_) error_ = std::current_exception();
      abort_.store(true, std::memory_order_release);
    }
    delete task;
    pending_.fetch_sub(1, std::memory_order_release);
  }

  std::vector<std::unique_ptr<ChaseLevDeque>> deques_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> abort_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace detail

void TaskContext::spawn(std::function<void(TaskContext&)> task) {
  impl_->spawn(worker_, std::move(task));
}

TaskTreeStats run_task_tree(std::size_t parallelism,
                            std::function<void(TaskContext&)> root) {
  std::size_t workers = std::min(parallelism, parallel_threads());
  if (workers == 0) workers = 1;
  if (t_in_parallel_region) workers = 1;
  detail::TaskSchedulerImpl scheduler(workers);
  scheduler.run_root(std::move(root));
  return scheduler.stats();
}

}  // namespace latticesched
