#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace latticesched {

namespace {

thread_local bool t_in_parallel_region = false;

std::size_t env_default_threads() {
  if (const char* env = std::getenv("LATTICESCHED_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::atomic<std::size_t> g_thread_override{0};

}  // namespace

std::size_t parallel_threads() {
  const std::size_t o = g_thread_override.load(std::memory_order_relaxed);
  if (o != 0) return o;
  static const std::size_t env = env_default_threads();
  return env;
}

void set_parallel_threads(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() { return t_in_parallel_region; }

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t r = 0; r < workers; ++r) {
    threads_.emplace_back([this, r] { worker_loop(r); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (rank >= engaged_) continue;  // not needed this region
      body = body_;
    }
    std::exception_ptr err;
    try {
      t_in_parallel_region = true;
      (*body)(rank + 1);
    } catch (...) {
      err = std::current_exception();
    }
    t_in_parallel_region = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err) errors_.push_back(err);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t parallelism,
                     const std::function<void(std::size_t)>& body) {
  if (parallelism == 0) return;
  // Nested regions (or a serial pool) run the whole body on rank 0: the
  // body's own index-claiming loop then processes every item inline.
  if (t_in_parallel_region || threads_.empty() || parallelism == 1) {
    body(0);
    return;
  }
  // Distinct application threads may hit the shared pool concurrently;
  // regions are serialized so one region's helpers never decrement
  // another's active count.  (Workers themselves never reach this lock —
  // the inline path above catches them.)
  std::lock_guard<std::mutex> region_lock(region_mu_);
  const std::size_t helpers = std::min(parallelism - 1, threads_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    engaged_ = helpers;
    active_ = helpers;
    errors_.clear();
    ++generation_;
  }
  cv_work_.notify_all();
  std::exception_ptr caller_err;
  try {
    t_in_parallel_region = true;
    body(0);
  } catch (...) {
    caller_err = std::current_exception();
  }
  t_in_parallel_region = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
    if (!caller_err && !errors_.empty()) caller_err = errors_.front();
  }
  if (caller_err) std::rethrow_exception(caller_err);
}

ThreadPool& ThreadPool::global() {
  // The pool is sized once per distinct target; changing the target swaps
  // in a fresh pool (old pools are kept alive until process exit so any
  // stale references stay valid — targets change a handful of times per
  // process, in tests).
  static std::mutex mu;
  static std::size_t built_for = 0;
  static ThreadPool* pool = nullptr;
  static std::vector<std::unique_ptr<ThreadPool>> retired;
  std::lock_guard<std::mutex> lock(mu);
  const std::size_t want = parallel_threads();
  if (pool == nullptr || built_for != want) {
    retired.emplace_back(std::make_unique<ThreadPool>(want - 1));
    pool = retired.back().get();
    built_for = want;
  }
  return *pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t threads = parallel_threads();
  if (threads == 1 || t_in_parallel_region || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  ThreadPool::global().run(
      (n + grain - 1) / grain, [&](std::size_t) {
        for (;;) {
          const std::size_t lo =
              next.fetch_add(grain, std::memory_order_relaxed);
          if (lo >= end) return;
          const std::size_t hi = std::min(end, lo + grain);
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        }
      });
}

}  // namespace latticesched
