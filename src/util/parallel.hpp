// Shared fork-join thread pool and parallel_for.
//
// The planner pipeline fans out over backends, the torus search
// speculatively explores several tori, and the conflict-graph builder
// chunks its per-sensor work — all through this one pool, so the process
// never oversubscribes the machine no matter how the layers nest.
//
// Design rules that keep users deterministic:
//  * the pool only provides *parallelism*, never *ordering*: every
//    consumer must combine worker results in a thread-independent order
//    (index order, CAS-min on indices, sorted merges);
//  * nested parallel regions degrade to serial inline execution, so a
//    parallel backend invoked from the parallel planner fan-out is safe;
//  * `set_parallel_threads(1)` (or LATTICESCHED_THREADS=1) turns every
//    parallel region into plain serial code — the determinism tests
//    compare that mode byte-for-byte against multi-threaded runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace latticesched {

/// Worker count used by the global pool: set_parallel_threads() override,
/// else LATTICESCHED_THREADS, else std::thread::hardware_concurrency().
/// Always at least 1 (1 means fully serial).
std::size_t parallel_threads();

/// Overrides the worker count; 0 restores the environment default.
/// Existing pool threads are reconfigured lazily on the next region.
void set_parallel_threads(std::size_t n);

/// True while the calling thread is inside a parallel region (used to
/// serialize nested regions).
bool in_parallel_region();

class ThreadPool {
 public:
  /// Pool with `workers` helper threads; the caller of run() always
  /// participates, so total parallelism is workers + 1.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Runs body(rank) on min(parallelism, workers()+1) threads, rank 0 on
  /// the calling thread.  Blocks until every rank returns; rethrows the
  /// first exception any rank threw.  Nested calls run body(0) inline;
  /// concurrent calls from distinct application threads serialize on an
  /// internal region lock (the pool is shared, not partitioned).
  void run(std::size_t parallelism,
           const std::function<void(std::size_t)>& body);

  /// Process-wide pool, sized by parallel_threads() - 1 helpers; resized
  /// lazily when set_parallel_threads changes the target.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t rank);

  std::mutex region_mu_;  // serializes whole regions across caller threads
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t engaged_ = 0;  // helper ranks participating this generation
  std::size_t active_ = 0;   // helpers still running this generation
  std::vector<std::exception_ptr> errors_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Calls fn(i) for every i in [begin, end), distributing chunks of
/// `grain` indices dynamically over the global pool.  Blocks until done.
/// Serial (inline, in index order) when the pool is serial, the range is
/// tiny, or the caller is already inside a parallel region.  `fn` must be
/// safe to call concurrently for distinct i; no ordering is guaranteed.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace latticesched
