// Shared fork-join thread pool, parallel_for, and a work-stealing task
// scheduler.
//
// The planner pipeline fans out over backends, the torus search
// speculatively explores several tori, and the conflict-graph builder
// chunks its per-sensor work — all through this one pool, so the process
// never oversubscribes the machine no matter how the layers nest.
//
// Design rules that keep users deterministic:
//  * the pool only provides *parallelism*, never *ordering*: every
//    consumer must combine worker results in a thread-independent order
//    (index order, CAS-min on indices, sorted merges);
//  * nested parallel regions degrade to serial inline execution, so a
//    parallel backend invoked from the parallel planner fan-out is safe;
//  * `set_parallel_threads(1)` (or LATTICESCHED_THREADS=1) turns every
//    parallel region into plain serial code — the determinism tests
//    compare that mode byte-for-byte against multi-threaded runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace latticesched {

/// Worker count used by the global pool: set_parallel_threads() override,
/// else LATTICESCHED_THREADS, else std::thread::hardware_concurrency().
/// Always at least 1 (1 means fully serial).
std::size_t parallel_threads();

/// Overrides the worker count; 0 restores the environment default.
/// Existing pool threads are reconfigured lazily on the next region.
void set_parallel_threads(std::size_t n);

/// True while the calling thread is inside a parallel region (used to
/// serialize nested regions).
bool in_parallel_region();

class ThreadPool {
 public:
  /// Pool with `workers` helper threads; the caller of run() always
  /// participates, so total parallelism is workers + 1.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Runs body(rank) on min(parallelism, workers()+1) threads, rank 0 on
  /// the calling thread.  Blocks until every rank returns; rethrows the
  /// first exception any rank threw.  Nested calls run body(0) inline;
  /// concurrent calls from distinct application threads serialize on an
  /// internal region lock (the pool is shared, not partitioned).
  void run(std::size_t parallelism,
           const std::function<void(std::size_t)>& body);

  /// Process-wide pool, sized by parallel_threads() - 1 helpers; resized
  /// lazily when set_parallel_threads changes the target.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t rank);

  std::mutex region_mu_;  // serializes whole regions across caller threads
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t engaged_ = 0;  // helper ranks participating this generation
  std::size_t active_ = 0;   // helpers still running this generation
  std::vector<std::exception_ptr> errors_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

namespace detail {
/// Pool-dispatch slow path of parallel_for; only reached when the range
/// is big enough and the pool is genuinely parallel.
void parallel_for_dispatch(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t)>& fn,
                           std::size_t grain);
}  // namespace detail

/// Calls fn(i) for every i in [begin, end), distributing chunks of
/// `grain` indices dynamically over the global pool.  Blocks until done.
/// Serial (inline, in index order, WITHOUT the std::function type
/// erasure — the 1-core CI runner never pays the indirection) when the
/// pool is serial, the range has at most one index, the range is tiny,
/// or the caller is already inside a parallel region.  `fn` must be
/// safe to call concurrently for distinct i; no ordering is guaranteed.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                  std::size_t grain = 1) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  if (n <= 1 || n <= grain || in_parallel_region() ||
      parallel_threads() <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  detail::parallel_for_dispatch(
      begin, end, std::function<void(std::size_t)>(std::ref(fn)), grain);
}

// ---------------------------------------------------------------------------
// Work-stealing task scheduler (Chase–Lev deques over the shared pool).
//
// run_task_tree() executes a dynamic tree of tasks: the root task (and
// every descendant) may spawn further tasks through its TaskContext.
// Each worker owns a Chase–Lev deque — spawn pushes onto the owner's
// bottom, the owner pops LIFO from the bottom (locally depth-first, so
// a DFS that spawns its children in reverse order keeps expanding its
// first child next), and idle workers steal FIFO from a victim's top
// (the oldest task, i.e. the shallowest and therefore biggest pending
// subtree).  The scheduler provides NO ordering: consumers must combine
// task results by a thread-independent key (the torus search tags every
// subtree task with its DFS sweep rank and assembles results by rank).
// ---------------------------------------------------------------------------

namespace detail {
class TaskSchedulerImpl;
}

/// Handle a running task uses to spawn subtasks onto the scheduler.
class TaskContext {
 public:
  /// Enqueues `task` on the calling worker's deque.  May be called any
  /// number of times; the spawned task runs on this worker (LIFO) unless
  /// an idle worker steals it first.
  void spawn(std::function<void(TaskContext&)> task);

  /// Rank of the executing worker in [0, parallelism).
  std::size_t worker() const { return worker_; }

 private:
  friend class detail::TaskSchedulerImpl;
  TaskContext(detail::TaskSchedulerImpl* impl, std::size_t worker)
      : impl_(impl), worker_(worker) {}
  detail::TaskSchedulerImpl* impl_;
  std::size_t worker_;
};

/// Scheduler counters for one run_task_tree call.
struct TaskTreeStats {
  std::uint64_t tasks = 0;   ///< tasks executed (root included)
  std::uint64_t steals = 0;  ///< tasks taken from another worker's deque
};

/// Runs `root` (plus everything it transitively spawns) over the global
/// pool with min(parallelism, pool size) workers and returns when every
/// spawned task has finished.  Serial — one worker draining its own
/// deque in LIFO order, i.e. plain DFS — when parallelism <= 1, the
/// pool is serial, or the caller is already inside a parallel region.
/// Rethrows the first task exception (remaining queued tasks are
/// dropped).
TaskTreeStats run_task_tree(std::size_t parallelism,
                            std::function<void(TaskContext&)> root);

}  // namespace latticesched
