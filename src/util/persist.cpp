#include "util/persist.hpp"

#include <cerrno>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

namespace latticesched::persist {

std::uint64_t fnv1a_bytes(const char* data, std::size_t len) {
  std::uint64_t state = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    state ^= static_cast<unsigned char>(data[i]);
    state *= 0x100000001b3ull;
  }
  return state;
}

std::string checksum_line(const std::string& body) {
  char line[32];
  std::snprintf(line, sizeof line, "checksum %016llx\n",
                static_cast<unsigned long long>(
                    fnv1a_bytes(body.data(), body.size())));
  return line;
}

bool verify_entry_checksum(const std::string& content) {
  const std::size_t trailer = content.rfind("\nchecksum ");
  if (trailer == std::string::npos) return false;
  const std::string body = content.substr(0, trailer + 1);
  // The body must actually end at "end" — a trailer glued onto trailing
  // garbage is corruption, not a valid entry.
  if (body.size() < 4 || body.compare(body.size() - 4, 4, "end\n") != 0) {
    return false;
  }
  return content.substr(trailer + 1) == checksum_line(body);
}

EntryStatus load_entry(const std::string& path, const std::string& magic,
                       int version, std::string* content) {
  {
    std::ifstream file(path, std::ios::binary);
    if (!file) return EntryStatus::kMissing;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    *content = buffer.str();
  }
  std::istringstream is(*content);
  std::string file_magic;
  int file_version = 0;
  if (!(is >> file_magic >> file_version) || file_magic != magic) {
    return EntryStatus::kCorrupt;
  }
  if (file_version != version) return EntryStatus::kStaleVersion;
  if (!verify_entry_checksum(*content)) return EntryStatus::kCorrupt;
  return EntryStatus::kOk;
}

bool write_entry_atomic(const std::string& path, const std::string& content,
                        const char* label) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "%s: cannot write %s\n", label, tmp.c_str());
    return false;
  }
  const char* data = content.data();
  std::size_t left = content.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    std::fprintf(stderr, "%s: short write to %s\n", label, tmp.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "%s: cannot publish %s\n", label, path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace latticesched::persist
