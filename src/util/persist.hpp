// Shared persist-file machinery for on-disk cache entries.
//
// Two subsystems persist versioned text entries into a --cache-dir —
// the TilingCache (core/tiling_cache.hpp, tc_*.entry) and the
// TuneCache (tune/tune_cache.hpp, tn_*.entry) — and both need the same
// durability story: a magic + version header line, a body terminated
// by an "end" line, a trailing "checksum <fnv64hex>" line over the
// body, an atomic publish (temp file + write + fsync + rename), and
// corrupt-tolerant loading that can tell "missing" from "stale
// version" from "corrupt".  These helpers are that story, factored out
// so the two entry formats cannot drift apart in their framing (the
// bodies stay format-specific; only the envelope is shared).
#pragma once

#include <cstdint>
#include <string>

namespace latticesched::persist {

/// Byte-stream FNV-1a64 — the checksum of serialized entries (and a
/// convenient stable hash for entry file names).
std::uint64_t fnv1a_bytes(const char* data, std::size_t len);

/// The trailing "checksum <fnv64hex>\n" line for `body` (which must
/// already end with its "end\n" terminator).
std::string checksum_line(const std::string& body);

/// Verifies the trailing "checksum <hex>" line of a serialized entry
/// against its body (everything up to and including the "end" line).
/// False on a missing, malformed, or mismatched trailer — and on a
/// trailer glued onto trailing garbage (the body must end "end\n").
bool verify_entry_checksum(const std::string& content);

/// Outcome of load_entry below.  kCorrupt covers every unusable-but-
/// present case EXCEPT a stale version, which gets its own status so
/// callers can skip (and later overwrite) old-format entries without
/// treating them as disk corruption.
enum class EntryStatus { kOk, kMissing, kStaleVersion, kCorrupt };

/// Reads the entry at `path` and validates its envelope: first line
/// token must equal `magic`, second token the decimal `version`, and
/// the checksum trailer must verify.  On kOk, `*content` holds the full
/// file (checksum line included) ready for body parsing.  Whenever the
/// file was readable at all — kOk, kStaleVersion, kCorrupt — `*content`
/// holds the raw bytes, so callers can quote the offending header in
/// diagnostics; only kMissing leaves it untouched.
EntryStatus load_entry(const std::string& path, const std::string& magic,
                       int version, std::string* content);

/// Atomically publishes `content` at `path`: POSIX write to
/// `path + ".tmp.<pid>"` (EINTR-restarted), fsync, close, rename.
/// Without the fsync a crash after the rename could publish a name
/// pointing at unwritten data — a torn entry that still exists under
/// the final path.  Racing writers of the same key rename identical
/// content, so whichever rename lands last is equally valid.  IO
/// failures warn on stderr (prefixed by `label`) and return false —
/// the cache stays correct, just colder.
bool write_entry_atomic(const std::string& path, const std::string& content,
                        const char* label);

}  // namespace latticesched::persist
