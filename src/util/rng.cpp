#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace latticesched {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is a fixed point of xoshiro; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire's method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  // Box-Muller; discard the second variate to keep state usage simple.
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::split() {
  const std::uint64_t child_seed = (*this)() ^ 0xd1b54a32d192ed03ULL;
  return Rng(child_seed);
}

}  // namespace latticesched
