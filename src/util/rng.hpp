// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (workload generators, simulated
// annealing, mobility models, property-test generators) draw from `Rng`,
// a xoshiro256** generator seeded through splitmix64.  Two runs with the
// same seed produce bit-identical streams on every platform, which is what
// makes the benchmark harness reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace latticesched {

/// Splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator, so it
/// can be plugged into <random> distributions as well.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform integer in [0, bound); `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Standard normal variate (Box-Muller, one value per call).
  double next_gaussian();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel-safe sub-streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace latticesched
