#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace latticesched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ = (n1 * mean_ + n2 * other.mean_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0,100]");
  }
  ensure_sorted();
  if (p == 0.0) return samples_.front();
  const auto n = static_cast<double>(samples_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return samples_[std::min(samples_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi <= lo");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
    ++counts_[i];
  }
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::to_string(std::size_t max_bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * max_bar_width / peak;
    os << "[" << bin_low(i) << ", " << bin_high(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ != 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

}  // namespace latticesched
