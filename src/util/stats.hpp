// Summary statistics used by the benchmark harness and the simulator
// metrics: online mean/variance (Welford), min/max, and percentile
// extraction from retained samples — plus the peak-RSS probe the scale
// benches and the driver's --cache-stats footer report memory with.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace latticesched {

/// Online accumulator: O(1) per observation, numerically stable variance.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains every sample; supports exact percentiles.  Intended for latency
/// distributions where tail behaviour matters.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank; p in [0, 100].
  double percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus
/// under/overflow counters; used for latency distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Renders a compact ASCII bar chart (one line per bucket).
  std::string to_string(std::size_t max_bar_width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Jain's fairness index of a vector of allocations: (Σx)² / (n·Σx²).
/// Returns 1.0 for perfectly equal shares, 1/n for a single hog.
double jain_fairness(const std::vector<double>& xs);

/// Peak resident set size of THIS process in bytes (VmHWM from
/// /proc/self/status) — the memory ceiling a run actually hit, which is
/// what the million-sensor scale benches pin.  Returns 0 on platforms
/// without procfs.
std::uint64_t peak_rss_bytes();

}  // namespace latticesched
