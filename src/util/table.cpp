#include "util/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace latticesched {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
  aligns_[0] = Align::kLeft;  // first column is usually a label
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::begin_row() {
  if (row_open_ && !current_.empty()) {
    throw std::logic_error("Table::begin_row: previous row unfinished");
  }
  row_open_ = true;
}

void Table::flush_row() {
  add_row(std::move(current_));
  current_ = {};
  row_open_ = false;
}

void Table::push_cell(std::string s) {
  if (!row_open_) throw std::logic_error("Table::cell: no open row");
  current_.push_back(std::move(s));
  if (current_.size() == headers_.size()) flush_row();
}

void Table::cell(const std::string& s) { push_cell(s); }
void Table::cell(const char* s) { push_cell(s); }
void Table::cell(std::int64_t v) { push_cell(std::to_string(v)); }
void Table::cell(std::uint64_t v) { push_cell(std::to_string(v)); }
void Table::cell(int v) { push_cell(std::to_string(v)); }
void Table::cell(unsigned v) { push_cell(std::to_string(v)); }
void Table::cell(double v, int precision) {
  push_cell(format_double(v, precision));
}
void Table::cell_percent(double fraction, int precision) {
  push_cell(format_double(fraction * 100.0, precision) + "%");
}

void Table::set_align(std::size_t col, Align a) { aligns_.at(col) = a; }

std::string Table::to_string() const {
  if (row_open_ && !current_.empty()) {
    throw std::logic_error("Table::to_string: unfinished row");
  }
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      if (c != 0) os << "  ";
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (aligns_[c] == Align::kLeft && c + 1 != row.size()) {
        os << std::string(pad, ' ');
      }
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace latticesched
