// Aligned console table printer.  The benchmark binaries use this to emit
// the rows/series corresponding to each paper figure in a stable,
// greppable layout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace latticesched {

/// Column alignment within a table cell.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows of strings (helpers format
/// numbers), print with aligned columns and a separator rule.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a fully formed row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Row-building helpers: begin_row() then exactly cols() cell(...) calls;
  /// the row auto-flushes once the last cell of the row is supplied.
  void begin_row();
  void cell(const std::string& s);
  void cell(const char* s);
  void cell(std::int64_t v);
  void cell(std::uint64_t v);
  void cell(int v);
  void cell(unsigned v);
  void cell(double v, int precision = 3);
  /// Formats as a percentage with the given precision, e.g. "12.5%".
  void cell_percent(double fraction, int precision = 1);

  void set_align(std::size_t col, Align a);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Renders with single-space-padded columns and an underline rule.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
  std::vector<std::string> current_;
  bool row_open_ = false;
  void flush_row();
  void push_cell(std::string s);
};

/// Formats a double with fixed precision (helper shared with Table).
std::string format_double(double v, int precision);

}  // namespace latticesched
