// TDMA and coloring baselines.
#include <gtest/gtest.h>

#include "baseline/coloring_schedule.hpp"
#include "baseline/tdma.hpp"
#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(Tdma, OneSlotPerSensor) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 3),
                                        shapes::chebyshev_ball(2, 1));
  const SensorSlots s = tdma_slots(d);
  EXPECT_EQ(s.period, d.size());
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(s.slot[i], i);
  }
  EXPECT_TRUE(check_collision_free(d, s).collision_free);
  EXPECT_THROW(tdma_slots(Deployment::uniform({}, shapes::l1_ball(2, 1))),
               std::invalid_argument);
}

TEST(Tdma, PeriodGrowsWithNetworkWhileTilingStaysFixed) {
  // The paper's scaling complaint, in miniature.
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule tiling_sched(*make_lattice_tiling(ball));
  for (std::int64_t n : {4, 8, 12}) {
    const Deployment d = Deployment::grid(Box::cube(2, 0, n - 1), ball);
    EXPECT_EQ(tdma_slots(d).period, static_cast<std::uint32_t>(n * n));
    EXPECT_EQ(tiling_sched.period(), 9u);  // independent of n
  }
}

class ColoringBaselines
    : public ::testing::TestWithParam<ColoringHeuristic> {};

TEST_P(ColoringBaselines, ProducesCollisionFreeSchedules) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 5),
                                        shapes::l1_ball(2, 1));
  SaConfig sa;
  sa.max_iters = 30'000;
  const SensorSlots s = coloring_slots(d, GetParam(), sa);
  EXPECT_GT(s.period, 0u);
  EXPECT_TRUE(check_collision_free(d, s).collision_free)
      << to_string(GetParam());
  EXPECT_NE(s.source.find(to_string(GetParam())), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, ColoringBaselines,
                         ::testing::Values(ColoringHeuristic::kGreedy,
                                           ColoringHeuristic::kWelshPowell,
                                           ColoringHeuristic::kDsatur,
                                           ColoringHeuristic::kAnnealing));

TEST(ColoringBaselines, NeverBeatTheTilingOptimum) {
  // On windows where the optimum is |N| (threshold exceeded), heuristics
  // can only match or exceed it.
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 6), ball);
  for (ColoringHeuristic h :
       {ColoringHeuristic::kGreedy, ColoringHeuristic::kWelshPowell,
        ColoringHeuristic::kDsatur}) {
    EXPECT_GE(coloring_slots(d, h).period, 9u) << to_string(h);
  }
}

TEST(ColoringBaselines, DsaturMatchesOptimumOnLatticeWindows) {
  // DSATUR tends to find the optimal 9 on Chebyshev windows — a sanity
  // anchor for the benchmark narrative (heuristics do fine here; the
  // tiling schedule just gets it constructively and provably).
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 8), ball);
  const SensorSlots s = coloring_slots(d, ColoringHeuristic::kDsatur);
  const DeploymentOptimum opt = optimal_slots_for_deployment(d);
  EXPECT_EQ(opt.optimal_slots, 9u);
  EXPECT_GE(s.period, opt.optimal_slots);
}

}  // namespace
}  // namespace latticesched
