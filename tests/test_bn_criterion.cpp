// Beauquier–Nivat exactness criterion (Section 3).
//
// Hard expectations below were cross-validated against the independent
// sublattice-tiling and torus-search deciders (see test_exactness.cpp for
// the systematic agreement property).
#include "tiling/bn_criterion.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(BnCriterion, SingleCellIsExact) {
  const BnResult r = bn_exactness(Prototile({Point{0, 0}}));
  ASSERT_TRUE(r.applicable);
  EXPECT_TRUE(r.exact);
  ASSERT_TRUE(r.factorization.has_value());
}

TEST(BnCriterion, RectanglesAreExact) {
  for (std::int64_t w = 1; w <= 4; ++w) {
    for (std::int64_t h = 1; h <= 4; ++h) {
      const BnResult r = bn_exactness(shapes::rectangle(w, h));
      ASSERT_TRUE(r.applicable);
      EXPECT_TRUE(r.exact) << w << "x" << h;
    }
  }
}

TEST(BnCriterion, AllTetrominoesAreExact) {
  // Classic fact: every tetromino tiles the plane by translations.
  const std::vector<Prototile> tetrominoes = {
      shapes::s_tetromino(),
      shapes::z_tetromino(),
      shapes::straight_polyomino(4),
      shapes::rectangle(2, 2),
      Prototile::from_ascii({"XXX", ".O."}, "T"),
      Prototile::from_ascii({"X.", "X.", "OX"}, "L"),
  };
  for (const Prototile& t : tetrominoes) {
    const BnResult r = bn_exactness(t);
    ASSERT_TRUE(r.applicable) << t.name();
    EXPECT_TRUE(r.exact) << t.name();
  }
}

TEST(BnCriterion, FigureTwoShapesAreExact) {
  // The paper: "it immediately follows that each prototile shown in
  // Figure 2 is exact."
  for (const Prototile& t :
       {shapes::chebyshev_ball(2, 1),
        shapes::euclidean_ball(Lattice::square(), 1.0),
        shapes::directional_antenna()}) {
    const BnResult r = bn_exactness(t);
    ASSERT_TRUE(r.applicable) << t.name();
    EXPECT_TRUE(r.exact) << t.name();
  }
}

TEST(BnCriterion, LargerChebyshevBallsAreExact) {
  for (std::int64_t radius = 1; radius <= 3; ++radius) {
    EXPECT_TRUE(bn_exactness(shapes::chebyshev_ball(2, radius)).exact);
  }
}

TEST(BnCriterion, L1BallsAreExact) {
  // Lee spheres tile Z² for every radius (perfect Lee codes in 2-D).
  for (std::int64_t radius = 1; radius <= 3; ++radius) {
    EXPECT_TRUE(bn_exactness(shapes::l1_ball(2, radius)).exact);
  }
}

TEST(BnCriterion, NotApplicableToNonPolyominoes) {
  EXPECT_FALSE(bn_exactness(Prototile::from_ascii({"X.X"})).applicable);
  EXPECT_FALSE(
      bn_exactness(Prototile::from_ascii({"XXX", "X.X", "XXX"})).applicable);
}

TEST(BnCriterion, FactorizationIsGeometricallyValid) {
  // Reconstruct the factors and verify W = X·Y·Z·X̂·Ŷ·Ẑ literally.
  for (const Prototile& t :
       {shapes::s_tetromino(), shapes::chebyshev_ball(2, 1),
        shapes::directional_antenna(), shapes::l1_ball(2, 2)}) {
    const BnResult r = bn_exactness(t);
    ASSERT_TRUE(r.exact) << t.name();
    ASSERT_TRUE(r.factorization.has_value());
    const BnFactorization& f = *r.factorization;
    const std::string& w = r.boundary.str();
    const std::size_t n = w.size();
    auto cyclic = [&](std::size_t from, std::size_t len) {
      std::string out;
      for (std::size_t i = 0; i < len; ++i) out += w[(from + i) % n];
      return out;
    };
    const std::string x = cyclic(f.start, f.len_x);
    const std::string y = cyclic(f.start + f.len_x, f.len_y);
    const std::string z = cyclic(f.start + f.len_x + f.len_y, f.len_z);
    const std::string second_half = cyclic(f.start + n / 2, n / 2);
    const std::string expected = BoundaryWord(x).hat().str() +
                                 BoundaryWord(y).hat().str() +
                                 BoundaryWord(z).hat().str();
    EXPECT_EQ(second_half, expected) << t.name();
    EXPECT_EQ(f.len_x + f.len_y + f.len_z, n / 2);
  }
}

TEST(BnCriterion, FindBnOnOddWordFails) {
  EXPECT_FALSE(find_bn_factorization(BoundaryWord("rul")).has_value());
}

// Property sweep: for randomly grown polyominoes the criterion must never
// crash and must produce a verifiable factorization whenever it reports
// exactness.  (Agreement with the other deciders is covered in
// test_exactness.cpp.)
class BnRandomPolyomino : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BnRandomPolyomino, FactorizationVerifiesWhenExact) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Prototile t = test_helpers::random_polyomino(rng, GetParam());
    const BnResult r = bn_exactness(t);
    if (!r.applicable) continue;  // grew a tile with a hole
    if (!r.exact) continue;
    const BnFactorization& f = *r.factorization;
    const std::string& w = r.boundary.str();
    const std::size_t n = w.size();
    auto cyclic = [&](std::size_t from, std::size_t len) {
      std::string out;
      for (std::size_t i = 0; i < len; ++i) out += w[(from + i) % n];
      return out;
    };
    const std::string second_half = cyclic(f.start + n / 2, n / 2);
    const std::string expected =
        BoundaryWord(cyclic(f.start, f.len_x)).hat().str() +
        BoundaryWord(cyclic(f.start + f.len_x, f.len_y)).hat().str() +
        BoundaryWord(cyclic(f.start + f.len_x + f.len_y, f.len_z))
            .hat()
            .str();
    EXPECT_EQ(second_half, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BnRandomPolyomino,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12));

}  // namespace
}  // namespace latticesched
