// Boundary-word extraction (prerequisite of the BN criterion, Section 3).
#include "tiling/boundary.hpp"

#include <gtest/gtest.h>

#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(Steps, CharConversionRoundTrips) {
  for (char c : {'r', 'u', 'l', 'd'}) {
    EXPECT_EQ(step_to_char(char_to_step(c)), c);
  }
  EXPECT_THROW(char_to_step('x'), std::invalid_argument);
}

TEST(Steps, ComplementPairs) {
  EXPECT_EQ(complement(Step::kRight), Step::kLeft);
  EXPECT_EQ(complement(Step::kLeft), Step::kRight);
  EXPECT_EQ(complement(Step::kUp), Step::kDown);
  EXPECT_EQ(complement(Step::kDown), Step::kUp);
}

TEST(BoundaryWord, HatReversesAndComplements) {
  const BoundaryWord w("rrud");
  EXPECT_EQ(w.hat().str(), "udll");
  // Hat is an involution.
  EXPECT_EQ(w.hat().hat(), w);
}

TEST(BoundaryWord, DisplacementAndClosure) {
  EXPECT_TRUE(BoundaryWord("ruld").is_closed());
  EXPECT_FALSE(BoundaryWord("rrul").is_closed());
  EXPECT_EQ(BoundaryWord("rru").displacement(), (Point{2, 1}));
  EXPECT_THROW(BoundaryWord("abc"), std::invalid_argument);
}

TEST(TraceBoundary, SingleCell) {
  const BoundaryAnalysis ba =
      trace_boundary(Prototile({Point{0, 0}}));
  EXPECT_TRUE(ba.is_polyomino);
  EXPECT_EQ(ba.word.str(), "ruld");
}

TEST(TraceBoundary, HorizontalDomino) {
  const BoundaryAnalysis ba = trace_boundary(shapes::straight_polyomino(2));
  EXPECT_TRUE(ba.is_polyomino);
  EXPECT_EQ(ba.word.length(), 6u);
  EXPECT_EQ(ba.word.str(), "rrulld");
  EXPECT_TRUE(ba.word.is_closed());
}

TEST(TraceBoundary, LTromino) {
  const BoundaryAnalysis ba = trace_boundary(shapes::l_tromino());
  EXPECT_TRUE(ba.is_polyomino);
  EXPECT_EQ(ba.word.length(), 8u);
  EXPECT_TRUE(ba.word.is_closed());
}

TEST(TraceBoundary, PerimeterOfRectangles) {
  for (std::int64_t w = 1; w <= 4; ++w) {
    for (std::int64_t h = 1; h <= 4; ++h) {
      const BoundaryAnalysis ba = trace_boundary(shapes::rectangle(w, h));
      EXPECT_TRUE(ba.is_polyomino);
      EXPECT_EQ(ba.word.length(), static_cast<std::size_t>(2 * (w + h)))
          << w << "x" << h;
      EXPECT_TRUE(ba.word.is_closed());
    }
  }
}

TEST(TraceBoundary, STetrominoPerimeter) {
  const BoundaryAnalysis ba = trace_boundary(shapes::s_tetromino());
  EXPECT_TRUE(ba.is_polyomino);
  EXPECT_EQ(ba.word.length(), 10u);  // S-tetromino perimeter
}

TEST(TraceBoundary, L1BallPerimeter) {
  // The plus-pentomino has perimeter 12.
  const BoundaryAnalysis ba = trace_boundary(shapes::l1_ball(2, 1));
  EXPECT_TRUE(ba.is_polyomino);
  EXPECT_EQ(ba.word.length(), 12u);
}

TEST(TraceBoundary, DisconnectedTileDetected) {
  const BoundaryAnalysis ba =
      trace_boundary(Prototile::from_ascii({"X.X"}));
  EXPECT_FALSE(ba.connected);
  EXPECT_FALSE(ba.is_polyomino);
}

TEST(TraceBoundary, HoleDetected) {
  const BoundaryAnalysis ba = trace_boundary(
      Prototile::from_ascii({"XXX", "X.X", "XXX"}));
  EXPECT_TRUE(ba.connected);
  EXPECT_FALSE(ba.simply_connected);
  EXPECT_FALSE(ba.is_polyomino);
}

TEST(TraceBoundary, WordStepsBalanceOnPolyominoes) {
  // On any traced polyomino the boundary word has equal numbers of r/l
  // and u/d steps (closure), and length = perimeter (even).
  for (const Prototile& t :
       {shapes::z_tetromino(), shapes::chebyshev_ball(2, 1),
        shapes::directional_antenna(), shapes::quadrant_sector(1)}) {
    const BoundaryAnalysis ba = trace_boundary(t);
    ASSERT_TRUE(ba.is_polyomino) << t.name();
    EXPECT_TRUE(ba.word.is_closed()) << t.name();
    EXPECT_EQ(ba.word.length() % 2, 0u) << t.name();
  }
}

TEST(TraceBoundary, Non2DThrows) {
  EXPECT_THROW(trace_boundary(Prototile({Point{0, 0, 0}})),
               std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
