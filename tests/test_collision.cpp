// The collision checker — ground truth for every schedule claim.
#include "core/collision.hpp"

#include <gtest/gtest.h>

#include "baseline/tdma.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(Collision, AllSameSlotCollides) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 2),
                                        shapes::chebyshev_ball(2, 1));
  SensorSlots slots;
  slots.period = 1;
  slots.slot.assign(d.size(), 0);
  const CollisionReport r = check_collision_free(d, slots);
  EXPECT_FALSE(r.collision_free);
  ASSERT_TRUE(r.witness.has_value());
  // The witness point really is covered by both named sensors.
  const PointVec ca = d.coverage_of(r.witness->sensor_a);
  const PointVec cb = d.coverage_of(r.witness->sensor_b);
  EXPECT_NE(std::find(ca.begin(), ca.end(), r.witness->point), ca.end());
  EXPECT_NE(std::find(cb.begin(), cb.end(), r.witness->point), cb.end());
  EXPECT_NE(r.to_string().find("collision in slot"), std::string::npos);
}

TEST(Collision, TdmaIsAlwaysCollisionFree) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 3),
                                        shapes::chebyshev_ball(2, 2));
  const CollisionReport r = check_collision_free(d, tdma_slots(d));
  EXPECT_TRUE(r.collision_free);
  EXPECT_EQ(r.to_string(), "collision-free");
}

TEST(Collision, DistantSensorsMaySshare) {
  const Deployment d = Deployment::uniform({Point{0, 0}, Point{10, 10}},
                                           shapes::chebyshev_ball(2, 1));
  SensorSlots slots;
  slots.period = 1;
  slots.slot = {0, 0};
  EXPECT_TRUE(check_collision_free(d, slots).collision_free);
}

TEST(Collision, AdjacentSensorsSameSlotCollide) {
  const Deployment d = Deployment::uniform({Point{0, 0}, Point{1, 0}},
                                           shapes::chebyshev_ball(2, 1));
  SensorSlots slots;
  slots.period = 2;
  slots.slot = {0, 0};
  EXPECT_FALSE(check_collision_free(d, slots).collision_free);
  slots.slot = {0, 1};
  EXPECT_TRUE(check_collision_free(d, slots).collision_free);
}

TEST(Collision, HiddenTerminalDetected) {
  // A and B out of each other's range, C between them: both cover C.
  const Deployment d = Deployment::uniform(
      {Point{0, 0}, Point{2, 0}, Point{4, 0}}, shapes::l1_ball(2, 1));
  SensorSlots slots;
  slots.period = 2;
  slots.slot = {0, 1, 0};  // A and C same slot; both cover B's position?
  // coverage(0) = ball at 0, coverage(2)=ball at 4: disjoint. OK.
  EXPECT_TRUE(check_collision_free(d, slots).collision_free);
  // Shrink the gap: sensors at 0 and 2 share the point (1,0).
  const Deployment d2 = Deployment::uniform({Point{0, 0}, Point{2, 0}},
                                            shapes::l1_ball(2, 1));
  SensorSlots s2;
  s2.period = 1;
  s2.slot = {0, 0};
  const CollisionReport r = check_collision_free(d2, s2);
  ASSERT_FALSE(r.collision_free);
  EXPECT_EQ(r.witness->point, (Point{1, 0}));
}

TEST(Collision, ValidationErrors) {
  const Deployment d = Deployment::uniform({Point{0, 0}},
                                           shapes::l1_ball(2, 1));
  SensorSlots bad_size;
  bad_size.period = 1;
  EXPECT_THROW(check_collision_free(d, bad_size), std::invalid_argument);
  SensorSlots zero_period;
  zero_period.period = 0;
  zero_period.slot = {0};
  EXPECT_THROW(check_collision_free(d, zero_period), std::invalid_argument);
  SensorSlots out_of_range;
  out_of_range.period = 2;
  out_of_range.slot = {5};
  EXPECT_THROW(check_collision_free(d, out_of_range),
               std::invalid_argument);
}

TEST(Collision, DirectionalAsymmetricConflict) {
  // With quadrant antennas, (0,0) covers (1,1) but not vice versa; they
  // still must not share a slot (the paper's predicate is symmetric
  // intersection of coverages).
  const Deployment d = Deployment::uniform({Point{0, 0}, Point{1, 1}},
                                           shapes::quadrant_sector(1));
  SensorSlots slots;
  slots.period = 1;
  slots.slot = {0, 0};
  EXPECT_FALSE(check_collision_free(d, slots).collision_free);
}

}  // namespace
}  // namespace latticesched
