#include "graph/coloring.hpp"

#include <gtest/gtest.h>

#include "graph/sa_coloring.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace {

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      g.add_edge(i, j);
    }
  }
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<std::uint32_t>((i + 1) % n));
  }
  return g;
}

Graph petersen_graph() {
  Graph g(10);
  for (std::uint32_t i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);          // outer C5
    g.add_edge(i + 5, ((i + 2) % 5) + 5);  // inner pentagram
    g.add_edge(i, i + 5);                // spokes
  }
  return g;
}

TEST(Coloring, ColorCountAndProperness) {
  const Graph g = cycle_graph(4);
  const Coloring c = {0, 1, 0, 1};
  EXPECT_EQ(color_count(c), 2u);
  EXPECT_TRUE(is_proper_coloring(g, c));
  EXPECT_FALSE(is_proper_coloring(g, {0, 0, 1, 1}));
  EXPECT_FALSE(is_proper_coloring(g, {0, 1}));  // size mismatch
}

TEST(Coloring, GreedyProducesProperColorings) {
  for (std::size_t n : {3u, 5u, 8u}) {
    const Graph g = cycle_graph(n);
    EXPECT_TRUE(is_proper_coloring(g, greedy_coloring(g)));
    EXPECT_TRUE(is_proper_coloring(g, welsh_powell_coloring(g)));
    EXPECT_TRUE(is_proper_coloring(g, dsatur_coloring(g)));
  }
}

TEST(Coloring, DsaturOptimalOnEvenCycle) {
  const Graph g = cycle_graph(8);
  EXPECT_EQ(color_count(dsatur_coloring(g)), 2u);
}

TEST(ExactChromatic, KnownChromaticNumbers) {
  EXPECT_EQ(exact_chromatic(complete_graph(4)).colors, 4u);
  EXPECT_EQ(exact_chromatic(cycle_graph(5)).colors, 3u);   // odd cycle
  EXPECT_EQ(exact_chromatic(cycle_graph(6)).colors, 2u);   // even cycle
  EXPECT_EQ(exact_chromatic(petersen_graph()).colors, 3u);
  for (const Graph& g :
       {complete_graph(4), cycle_graph(5), petersen_graph()}) {
    const auto r = exact_chromatic(g);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_TRUE(is_proper_coloring(g, r.coloring));
    EXPECT_EQ(color_count(r.coloring), r.colors);
  }
}

TEST(ExactChromatic, EmptyAndEdgelessGraphs) {
  const auto r0 = exact_chromatic(Graph(0));
  EXPECT_EQ(r0.colors, 0u);
  EXPECT_TRUE(r0.proven_optimal);
  const auto r1 = exact_chromatic(Graph(5));
  EXPECT_EQ(r1.colors, 1u);
  EXPECT_TRUE(r1.proven_optimal);
}

TEST(ExactChromatic, CliqueLowerBoundReported) {
  const auto r = exact_chromatic(complete_graph(5));
  EXPECT_EQ(r.clique_lower_bound, 5u);
  EXPECT_EQ(r.colors, 5u);
}

TEST(ExactChromatic, HeuristicsNeverBeatExact) {
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g(12);
    for (std::uint32_t i = 0; i < 12; ++i) {
      for (std::uint32_t j = i + 1; j < 12; ++j) {
        if (rng.next_bool(0.35)) g.add_edge(i, j);
      }
    }
    const auto exact = exact_chromatic(g);
    ASSERT_TRUE(exact.proven_optimal);
    EXPECT_LE(exact.colors, color_count(greedy_coloring(g)));
    EXPECT_LE(exact.colors, color_count(welsh_powell_coloring(g)));
    EXPECT_LE(exact.colors, color_count(dsatur_coloring(g)));
    EXPECT_GE(exact.colors, exact.clique_lower_bound);
  }
}

TEST(ExactChromatic, NodeBudgetDegradesGracefully) {
  ExactColoringConfig cfg;
  cfg.node_limit = 3;
  Graph g(14);
  Rng rng(7);
  for (std::uint32_t i = 0; i < 14; ++i) {
    for (std::uint32_t j = i + 1; j < 14; ++j) {
      if (rng.next_bool(0.4)) g.add_edge(i, j);
    }
  }
  const auto r = exact_chromatic(g, cfg);
  // Whatever happened, the result must be a proper coloring.
  EXPECT_TRUE(is_proper_coloring(g, r.coloring));
  EXPECT_EQ(color_count(r.coloring), r.colors);
}

TEST(SaColoring, FindsProperColoringsOnEasyGraphs) {
  const Graph g = cycle_graph(10);
  const auto c = sa_find_coloring(g, 2);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(is_proper_coloring(g, *c));
}

TEST(SaColoring, ImpossibleTargetFails) {
  const Graph g = complete_graph(5);
  SaConfig cfg;
  cfg.max_iters = 20'000;
  cfg.restarts = 2;
  EXPECT_FALSE(sa_find_coloring(g, 4, cfg).has_value());
}

TEST(SaColoring, MinColoringNeverWorseThanDsatur) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g(15);
    for (std::uint32_t i = 0; i < 15; ++i) {
      for (std::uint32_t j = i + 1; j < 15; ++j) {
        if (rng.next_bool(0.3)) g.add_edge(i, j);
      }
    }
    SaConfig cfg;
    cfg.max_iters = 30'000;
    const auto r = sa_min_coloring(g, cfg);
    EXPECT_TRUE(is_proper_coloring(g, r.coloring));
    EXPECT_LE(r.colors, color_count(dsatur_coloring(g)));
  }
}

TEST(SaColoring, ZeroColorsOnlyForEmptyGraph) {
  EXPECT_TRUE(sa_find_coloring(Graph(0), 0).has_value());
  EXPECT_FALSE(sa_find_coloring(Graph(3), 0).has_value());
}

// ---------------------------------------------------------------------------
// Incremental greedy repair (the PlanSession warm start)
// ---------------------------------------------------------------------------

Graph random_graph(Rng& rng, std::size_t n, std::uint64_t edge_pct) {
  Graph g(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.next_below(100) < edge_pct) g.add_edge(u, v);
    }
  }
  return g;
}

TEST(IncrementalGreedy, NoDirtyVerticesIsTheIdentity) {
  Rng rng(5);
  const Graph g = random_graph(rng, 40, 20);
  const Coloring base = greedy_coloring(g);
  EXPECT_EQ(incremental_greedy_coloring(g, base, {}), base);
}

TEST(IncrementalGreedy, AllUncoloredReproducesGreedyFromScratch) {
  Rng rng(6);
  const Graph g = random_graph(rng, 50, 15);
  EXPECT_EQ(incremental_greedy_coloring(
                g, Coloring(g.size(), kUncolored), {}),
            greedy_coloring(g));
}

TEST(IncrementalGreedy, RepairsEditedGraphsExactly) {
  // Color a graph, edit it by inserting extra edges, hand the OLD
  // colors plus the touched vertices to the repair, and demand the
  // exact from-scratch greedy coloring back.
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 20 + rng.next_below(30);
    Graph g = random_graph(rng, n, 15);
    const Coloring before = greedy_coloring(g);

    std::vector<std::uint32_t> dirty;
    for (int edits = 0; edits < 4; ++edits) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(n));
      const auto v = static_cast<std::uint32_t>(rng.next_below(n));
      if (u == v || g.has_edge(u, v)) continue;
      g.add_edge(u, v);
      dirty.push_back(u);
      dirty.push_back(v);
    }
    EXPECT_EQ(incremental_greedy_coloring(g, before, dirty),
              greedy_coloring(g))
        << "round " << round;
  }
}

TEST(IncrementalGreedy, ValidatesItsInputs) {
  const Graph g(4);
  EXPECT_THROW(incremental_greedy_coloring(g, Coloring(3, 0), {}),
               std::invalid_argument);
  EXPECT_THROW(incremental_greedy_coloring(g, Coloring(4, 0), {9}),
               std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
