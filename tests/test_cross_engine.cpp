// Three-engine cross-validation on the complete pentomino universe.
//
// The BN criterion is the only complete decider; the sublattice search
// and the torus exact-cover search are independent implementations with
// independent failure modes.  This suite checks BOTH directions of
// agreement over all 63 fixed pentominoes:
//   * every BN-exact pentomino is tiled by the torus engine too
//     (a third, structurally different witness);
//   * every BN-non-exact pentomino defeats the torus engine on every
//     torus within a budget (if any search succeeded, BN would be wrong —
//     a tiling is a tiling).
#include <gtest/gtest.h>

#include "tiling/bn_criterion.hpp"
#include "tiling/enumerate.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {
namespace {

std::vector<Prototile> pentominoes_where(bool exact) {
  std::vector<Prototile> out;
  for (const Prototile& t : enumerate_fixed_polyominoes(5)) {
    if (bn_exactness(t).exact == exact) out.push_back(t);
  }
  return out;
}

TEST(CrossEngine, TorusSearchTilesEveryExactPentomino) {
  TorusSearchConfig cfg;
  cfg.max_period_cells = 100;
  cfg.node_limit = 2'000'000;
  const auto exact = pentominoes_where(true);
  ASSERT_EQ(exact.size(), 47u);  // pinned by the census
  for (const Prototile& t : exact) {
    const auto tiling = search_periodic_tiling({t}, cfg);
    ASSERT_TRUE(tiling.has_value())
        << "BN says exact but torus search failed on\n"
        << t.to_ascii();
    std::string err;
    EXPECT_TRUE(tiling->verify_window(Box::centered(2, 10), &err))
        << t.to_ascii() << err;
  }
}

TEST(CrossEngine, TorusSearchRejectsEveryNonExactPentomino) {
  // A successful search would be a constructive refutation of BN; the
  // budget only bounds how hard we try, never what we accept.
  TorusSearchConfig cfg;
  cfg.max_period_cells = 50;
  cfg.node_limit = 500'000;
  const auto non_exact = pentominoes_where(false);
  ASSERT_EQ(non_exact.size(), 16u);  // 63 - 47
  for (const Prototile& t : non_exact) {
    EXPECT_FALSE(search_periodic_tiling({t}, cfg).has_value())
        << "torus search tiled a BN-non-exact pentomino:\n"
        << t.to_ascii();
  }
}

TEST(CrossEngine, NonExactPentominoesAreTheExpectedShapes) {
  // Sanity on the census content: the plus/X-pentomino (l1 ball) is
  // exact; at least one orientation of the famously awkward U- and
  // W-pentominoes is among the non-exact ones.
  const auto non_exact = pentominoes_where(false);
  auto contains_shape = [&](const std::vector<std::string>& art) {
    const Prototile probe = Prototile::from_ascii(art);
    const Prototile canon = probe.normalized_at(probe.points().front());
    for (const Prototile& t : non_exact) {
      if (t == canon) return true;
    }
    return false;
  };
  // U-pentomino: cannot tile the plane by translations alone.
  EXPECT_TRUE(contains_shape({"X.X",
                              "XXX"}));
  // The X/plus pentomino tiles (perfect Lee code) — must NOT be listed.
  EXPECT_FALSE(contains_shape({".X.",
                               "XXX",
                               ".X."}));
}

}  // namespace
}  // namespace latticesched
