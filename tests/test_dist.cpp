// Distributed planning service tests: shard partitioning, the wire
// protocol, and the acceptance pins — a multi-worker registry sweep is
// byte-identical (modulo wall times) to the single-process PlanService
// run, a warm shared --cache-dir sweep reports ZERO torus-search misses
// across all workers, and a worker killed mid-sweep has its shard
// reassigned without losing a single item.
//
// Worker processes are the real CLI (LATTICESCHED_CLI_PATH, injected by
// CMake), so these tests exercise the exact binary a deployment runs.
#include <gtest/gtest.h>

#include <string>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "core/plan_service.hpp"
#include "core/report.hpp"
#include "dist/coordinator.hpp"
#include "dist/wire.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

using dist::CoordinatorConfig;
using dist::ShardCoordinator;
using dist::ShardStrategy;
using test_helpers::TempDir;

CoordinatorConfig config_for(std::size_t workers,
                             const std::string& cache_dir = "") {
  CoordinatorConfig config;
  config.workers = workers;
  config.cache_dir = cache_dir;
  config.worker_exe = LATTICESCHED_CLI_PATH;
  config.worker_threads = 1;  // deterministic worker-side cache counters
  return config;
}

/// Zeroes every "wall_ms" value — the one field the acceptance
/// criterion excludes from byte-identity.
std::string normalize_wall(std::string json) {
  const std::string needle = "\"wall_ms\": ";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    std::size_t end = pos;
    while (end < json.size() && json[end] != ',' && json[end] != '}' &&
           json[end] != '\n') {
      ++end;
    }
    json.replace(pos, end - pos, "0");
    ++pos;
  }
  return json;
}

/// Additionally blanks the cache-counter and worker-failure footer for
/// tests where the comparison targets the planned items themselves
/// (failure reassignment legitimately shifts per-worker counters).
std::string normalize_volatile(std::string json) {
  json = normalize_wall(std::move(json));
  const std::string cache_needle = "\"cache\": {";
  std::size_t pos = json.find(cache_needle);
  if (pos != std::string::npos) {
    const std::size_t end = json.find('}', pos);
    json.replace(pos, end - pos + 1, "\"cache\": {0}");
  }
  // The search footer is a cost counter like the cache one: a warm run
  // searches nothing (empty kernel), a cold run reports its kernel and
  // task counts.
  const std::string search_needle = "\"search\": {";
  pos = json.find(search_needle);
  if (pos != std::string::npos) {
    const std::size_t end = json.find('}', pos);
    json.replace(pos, end - pos + 1, "\"search\": {0}");
  }
  for (const std::string needle :
       {"\"worker_failures\": ", "\"worker_timeouts\": "}) {
    pos = json.find(needle);
    if (pos != std::string::npos) {
      std::size_t end = pos + needle.size();
      while (end < json.size() && json[end] != ',') ++end;
      json.replace(pos, end - pos, needle + "0");
    }
  }
  return json;
}

std::vector<BatchItem> registry_items(
    const std::vector<std::string>& backends) {
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  return service.registry_batch(params, backends);
}

// ---- partitioning ---------------------------------------------------------

std::vector<BatchItem> dummy_items(const std::vector<std::int64_t>& sizes) {
  std::vector<BatchItem> items;
  for (std::int64_t n : sizes) {
    BatchItem item;
    item.query.scenario = "grid";
    item.query.params.n = n;
    items.push_back(std::move(item));
  }
  return items;
}

void expect_exact_cover(
    const std::vector<std::vector<std::size_t>>& shards, std::size_t n) {
  std::vector<int> seen(n, 0);
  for (const auto& shard : shards) {
    EXPECT_FALSE(shard.empty()) << "no shard may be empty";
    for (std::size_t idx : shard) {
      ASSERT_LT(idx, n);
      ++seen[idx];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], 1) << "item " << i << " must appear exactly once";
  }
}

TEST(ShardPartition, BlockIsContiguousAndBalanced) {
  const auto items = dummy_items(std::vector<std::int64_t>(10, 6));
  const auto shards =
      ShardCoordinator::partition(items, 4, ShardStrategy::kBlock);
  ASSERT_EQ(shards.size(), 4u);
  expect_exact_cover(shards, items.size());
  // Balanced: 10 = 3 + 3 + 2 + 2, contiguous and in order.
  EXPECT_EQ(shards[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(shards[1], (std::vector<std::size_t>{3, 4, 5}));
  EXPECT_EQ(shards[2], (std::vector<std::size_t>{6, 7}));
  EXPECT_EQ(shards[3], (std::vector<std::size_t>{8, 9}));
}

TEST(ShardPartition, WeightedBalancesLoadDeterministically) {
  // One monster item plus small ones: LPT must isolate the monster and
  // spread the rest rather than splitting 'contiguously by count'.
  const auto items = dummy_items({100, 4, 4, 4, 4, 4, 4});
  const auto shards =
      ShardCoordinator::partition(items, 2, ShardStrategy::kSizeWeighted);
  ASSERT_EQ(shards.size(), 2u);
  expect_exact_cover(shards, items.size());
  EXPECT_EQ(shards[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(shards[1], (std::vector<std::size_t>{1, 2, 3, 4, 5, 6}));
  // Deterministic: same inputs, same partition.
  EXPECT_EQ(shards, ShardCoordinator::partition(
                        items, 2, ShardStrategy::kSizeWeighted));
}

TEST(ShardPartition, ShardCountCapsAtItemCount) {
  const auto items = dummy_items({6, 6, 6});
  for (const ShardStrategy strategy :
       {ShardStrategy::kBlock, ShardStrategy::kSizeWeighted}) {
    const auto shards = ShardCoordinator::partition(items, 8, strategy);
    ASSERT_EQ(shards.size(), 3u);
    expect_exact_cover(shards, items.size());
  }
  EXPECT_TRUE(
      ShardCoordinator::partition({}, 4, ShardStrategy::kBlock).empty());
}

TEST(ShardPartition, ParseStrategyNames) {
  EXPECT_EQ(dist::parse_shard_strategy("block"), ShardStrategy::kBlock);
  EXPECT_EQ(dist::parse_shard_strategy("weighted"),
            ShardStrategy::kSizeWeighted);
  EXPECT_THROW(dist::parse_shard_strategy("round-robin"),
               std::invalid_argument);
}

// ---- wire protocol --------------------------------------------------------

TEST(Wire, FrameRoundTripOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const dist::WireMessage sent{"ASSIGN",
                               "3\n{\"scenario\": \"grid\"}\nwith\nlines"};
  ASSERT_TRUE(dist::write_frame(sv[0], sent));
  ASSERT_TRUE(dist::write_frame(sv[0], {"SHUTDOWN", ""}));
  dist::WireMessage got;
  ASSERT_TRUE(dist::read_frame(sv[1], &got));
  EXPECT_EQ(got.verb, sent.verb);
  EXPECT_EQ(got.body, sent.body);
  ASSERT_TRUE(dist::read_frame(sv[1], &got));
  EXPECT_EQ(got.verb, "SHUTDOWN");
  EXPECT_EQ(got.body, "");
  // EOF after the peer closes.
  ::close(sv[0]);
  EXPECT_FALSE(dist::read_frame(sv[1], &got));
  ::close(sv[1]);

  std::string shard, rest;
  dist::split_body(sent.body, &shard, &rest);
  EXPECT_EQ(shard, "3");
  EXPECT_EQ(rest, "{\"scenario\": \"grid\"}\nwith\nlines");
}

TEST(Wire, WriteToClosedPeerFailsInsteadOfSigpipe) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  EXPECT_FALSE(dist::write_frame(sv[0], {"ASSIGN", "payload"}));
  ::close(sv[0]);
}

TEST(Wire, BatchItemsJsonRoundTripsExactly) {
  std::vector<BatchItem> items;
  BatchItem a;
  a.query.scenario = "random-subset";
  a.query.params.n = 14;
  a.query.params.radius = 3;
  a.query.params.seed = 77;
  a.query.params.channels = 4;
  a.query.params.density = 1.0 / 3.0;  // %.6g would corrupt this
  a.backends = {"tiling", "dsatur"};
  a.search.max_period_cells = 123;
  a.search.node_limit = 456789;
  a.search.require_all_prototiles = true;
  a.search.use_dense_engine = false;
  a.search.use_parallel = false;
  a.sa.max_iters = 31337;
  a.sa.initial_temperature = 1.75;
  a.sa.cooling = 0.99991;
  a.sa.seed = 9;
  a.sa.restarts = 2;
  a.verify = false;
  items.push_back(a);
  BatchItem b;  // defaults + empty backend list ("all")
  b.query.scenario = "grid";
  items.push_back(b);

  const auto parsed = parse_batch_items_json(batch_items_to_json(items));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].query.scenario, "random-subset");
  EXPECT_EQ(parsed[0].query.params.n, 14);
  EXPECT_EQ(parsed[0].query.params.radius, 3);
  EXPECT_EQ(parsed[0].query.params.seed, 77u);
  EXPECT_EQ(parsed[0].query.params.channels, 4u);
  EXPECT_EQ(parsed[0].query.params.density, 1.0 / 3.0);  // bit-exact
  EXPECT_EQ(parsed[0].backends,
            (std::vector<std::string>{"tiling", "dsatur"}));
  EXPECT_EQ(parsed[0].search.max_period_cells, 123);
  EXPECT_EQ(parsed[0].search.node_limit, 456789u);
  EXPECT_TRUE(parsed[0].search.require_all_prototiles);
  EXPECT_FALSE(parsed[0].search.use_dense_engine);
  EXPECT_FALSE(parsed[0].search.use_parallel);
  EXPECT_EQ(parsed[0].sa.max_iters, 31337u);
  EXPECT_EQ(parsed[0].sa.initial_temperature, 1.75);
  EXPECT_EQ(parsed[0].sa.cooling, 0.99991);
  EXPECT_EQ(parsed[0].sa.seed, 9u);
  EXPECT_EQ(parsed[0].sa.restarts, 2u);
  EXPECT_FALSE(parsed[0].verify);
  EXPECT_EQ(parsed[1].query.scenario, "grid");
  EXPECT_TRUE(parsed[1].backends.empty());
  EXPECT_TRUE(parsed[1].verify);
}

TEST(Wire, BatchReportJsonParseEmitIsIdentity) {
  set_parallel_threads(1);
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  params.channels = 2;
  std::vector<BatchItem> items;
  for (const char* name : {"grid", "multichannel", "no-such-scenario"}) {
    BatchItem item;
    item.query = ScenarioQuery{name, params};
    item.backends = name == std::string("no-such-scenario")
                        ? std::vector<std::string>{}
                        : std::vector<std::string>{"tiling", "tdma"};
    items.push_back(std::move(item));
  }
  const BatchReport report = service.run(items);
  set_parallel_threads(0);
  EXPECT_FALSE(report.all_ok());  // the bad scenario is a reported failure

  const std::string emitted = batch_report_to_json(report);
  const BatchReport parsed = parse_batch_report_json(emitted);
  ASSERT_EQ(parsed.items.size(), report.items.size());
  EXPECT_EQ(parsed.cache_hits, report.cache_hits);
  EXPECT_EQ(parsed.cache_misses, report.cache_misses);
  EXPECT_FALSE(parsed.items[2].built);
  // Emit ∘ parse ∘ emit is the identity — the distributed merge path
  // cannot lose or reshape a field without this failing.
  EXPECT_EQ(batch_report_to_json(parsed), emitted);

  EXPECT_THROW(parse_batch_report_json("{}"), std::invalid_argument);
}

// ---- coordinator end-to-end ----------------------------------------------

TEST(DistributedService, WarmSweepByteIdenticalToSerialAndMissFree) {
  // The acceptance pin.  One cold serial sweep populates a persistent
  // cache directory; then a fresh serial service and a 4-worker
  // distributed run replan the identical full-registry batch from that
  // directory.  Both warm runs must (a) report ZERO torus-search misses
  // and (b) serialize byte-identically modulo wall times — including
  // the cache counters, because every worker's searches hit the shared
  // persistent cache.
  TempDir cache_dir;
  set_parallel_threads(1);
  const std::vector<BatchItem> items =
      registry_items({"tiling", "dsatur", "tdma"});

  PlanService cold_service;
  cold_service.tiling_cache().set_persist_dir(cache_dir.path);
  const BatchReport cold = cold_service.run(items);
  ASSERT_TRUE(cold.all_ok());
  EXPECT_GT(cold.cache_misses, 0u);

  PlanService warm_service;
  warm_service.tiling_cache().set_persist_dir(cache_dir.path);
  const BatchReport serial = warm_service.run(items);
  ASSERT_TRUE(serial.all_ok());
  EXPECT_EQ(serial.cache_misses, 0u);
  set_parallel_threads(0);

  ShardCoordinator coordinator(config_for(4, cache_dir.path));
  const BatchReport distributed = coordinator.run(items);
  ASSERT_TRUE(distributed.all_ok());
  EXPECT_EQ(distributed.worker_failures, 0u);
  EXPECT_EQ(distributed.cache_misses, 0u)
      << "a populated --cache-dir must serve every worker's torus "
         "search from disk";
  EXPECT_EQ(distributed.cache_hits, serial.cache_hits)
      << "workers collectively run exactly the serial run's searches";
  EXPECT_EQ(coordinator.worker_stats().size(), 4u);
  for (const dist::WorkerCacheStats& w : coordinator.worker_stats()) {
    EXPECT_EQ(w.cache_misses, 0u) << "pid " << w.pid;
    EXPECT_FALSE(w.failed);
  }

  EXPECT_EQ(normalize_wall(batch_report_to_json(distributed)),
            normalize_wall(batch_report_to_json(serial)));

  // The warm plans are the cold plans: the cache changed the cost, not
  // one byte of the answer.
  EXPECT_EQ(normalize_volatile(batch_report_to_json(distributed)),
            normalize_volatile(batch_report_to_json(cold)));
}

TEST(DistributedService, SingleItemBatchColdByteIdentical) {
  // A one-item batch through the coordinator: one shard, one worker
  // (the fleet caps at the shard count), and — because the cold cache
  // work is identical — the FULL report including cache counters
  // matches the serial run byte-for-byte modulo wall times.
  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 6;
  item.backends = {"tiling"};

  set_parallel_threads(1);
  PlanService service;
  const BatchReport serial = service.run({item});
  set_parallel_threads(0);

  ShardCoordinator coordinator(config_for(4));
  const BatchReport distributed = coordinator.run({item});
  ASSERT_TRUE(distributed.all_ok());
  EXPECT_EQ(coordinator.worker_stats().size(), 1u)
      << "a single-item batch must not spawn idle workers";
  EXPECT_EQ(distributed.cache_misses, 1u);
  EXPECT_EQ(normalize_wall(batch_report_to_json(distributed)),
            normalize_wall(batch_report_to_json(serial)));
}

TEST(DistributedService, EmptyBatchSpawnsNothing) {
  ShardCoordinator coordinator(config_for(4));
  const BatchReport report = coordinator.run({});
  EXPECT_TRUE(report.items.empty());
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.worker_failures, 0u);
  EXPECT_TRUE(coordinator.worker_stats().empty());
}

TEST(DistributedService, EmptySweepListsProduceEmptyBatches) {
  // Sweep expanders fed empty lists produce empty query lists; both the
  // serial service and the coordinator must treat the resulting empty
  // batch as a successful no-op.
  const auto queries = radius_sweep("grid", {}, {});
  EXPECT_TRUE(queries.empty());
  const auto items = PlanService::items_for(queries, {"tiling"});
  EXPECT_TRUE(items.empty());
  PlanService service;
  EXPECT_TRUE(service.run(items).items.empty());
  ShardCoordinator coordinator(config_for(2));
  EXPECT_TRUE(coordinator.run(items).items.empty());
}

TEST(DistributedService, DuplicateScenarioItemsPlanIndependently) {
  // A comma list can name the same scenario twice ("grid,grid"): two
  // identical items, two identical result sets, even when the shards
  // land on different workers with private caches.
  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 6;
  item.backends = {"tiling", "tdma"};
  const std::vector<BatchItem> items = {item, item};

  set_parallel_threads(1);
  PlanService service;
  const BatchReport serial = service.run(items);
  set_parallel_threads(0);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_EQ(serial.items.size(), 2u);
  EXPECT_EQ(serial.items[0].label, serial.items[1].label);

  ShardCoordinator coordinator(config_for(2));
  const BatchReport distributed = coordinator.run(items);
  ASSERT_TRUE(distributed.all_ok());
  EXPECT_EQ(coordinator.worker_stats().size(), 2u);
  // Cache counters legitimately differ (the serial run's second item
  // hits the first item's search; separate workers each pay it), so
  // the pin covers the planned items, not the counter footer.
  EXPECT_EQ(normalize_volatile(batch_report_to_json(distributed)),
            normalize_volatile(batch_report_to_json(serial)));
}

TEST(DistributedService, DynamicTracesShipOverTheWireByteIdentical) {
  // A dynamic scenario AND a script-driven item distributed across
  // workers: the per-step results (step column, shrinking fleets) must
  // merge byte-identically to the serial run — traces are first-class
  // wire citizens, not a driver-only feature.
  BatchItem dynamic;
  dynamic.query.scenario = "grid-failures";
  dynamic.query.params.n = 6;
  dynamic.query.params.steps = 2;
  dynamic.backends = {"tiling", "tdma"};
  BatchItem scripted;
  scripted.query.scenario = "grid";
  scripted.query.params.n = 5;
  scripted.backends = {"greedy", "tdma"};
  scripted.trace_script = "step\nremove 0 0\nstep\nadd 9 9\nradius 2\n";
  const std::vector<BatchItem> items = {dynamic, scripted};

  set_parallel_threads(1);
  PlanService service;
  const BatchReport serial = service.run(items);
  set_parallel_threads(0);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_EQ(serial.items[0].steps.size(), 3u);
  ASSERT_EQ(serial.items[1].steps.size(), 3u);

  ShardCoordinator coordinator(config_for(2));
  const BatchReport distributed = coordinator.run(items);
  ASSERT_TRUE(distributed.all_ok());
  ASSERT_EQ(distributed.items[0].steps.size(), 3u);
  EXPECT_EQ(distributed.items[1].steps[2].sensors, 25u);  // 25 - 1 + 1
  EXPECT_EQ(normalize_volatile(batch_report_to_json(distributed)),
            normalize_volatile(batch_report_to_json(serial)));
}

TEST(DistributedService, KilledWorkerShardIsReassigned) {
  // The failure-handling regression: worker 1 crashes before sending its
  // first RESULT (fault-injected, deterministic).  With retries=0 the
  // slot stays dead, so the coordinator must detect the death, hand the
  // shard to a surviving worker, surface exactly one failure, and still
  // deliver every item of the sweep.
  const std::vector<BatchItem> items = registry_items({"tiling"});
  ASSERT_GE(items.size(), 3u);

  set_parallel_threads(1);
  PlanService service;
  const BatchReport serial = service.run(items);
  set_parallel_threads(0);

  CoordinatorConfig config = config_for(3);
  config.fault_plan = "worker=1:crash:after-frames=1";
  config.retries = 0;
  ShardCoordinator coordinator(std::move(config));
  const BatchReport distributed = coordinator.run(items);

  ASSERT_TRUE(distributed.all_ok())
      << "every item must survive the worker death";
  EXPECT_EQ(distributed.worker_failures, 1u);
  EXPECT_EQ(distributed.worker_timeouts, 0u);
  EXPECT_FALSE(distributed.degraded);
  EXPECT_TRUE(distributed.quarantined_items.empty());
  ASSERT_EQ(coordinator.worker_stats().size(), 3u);
  EXPECT_TRUE(coordinator.worker_stats()[1].failed);
  EXPECT_EQ(coordinator.worker_stats()[1].shards_completed, 0u);
  EXPECT_EQ(coordinator.worker_stats()[1].respawns, 0u);
  EXPECT_FALSE(coordinator.worker_stats()[0].failed);
  EXPECT_FALSE(coordinator.worker_stats()[2].failed);
  EXPECT_EQ(normalize_volatile(batch_report_to_json(distributed)),
            normalize_volatile(batch_report_to_json(serial)));
}

TEST(DistributedService, UnknownBackendThrowsBeforeSpawning) {
  BatchItem item;
  item.query.scenario = "grid";
  item.backends = {"no-such-backend"};
  ShardCoordinator coordinator(config_for(2));
  EXPECT_THROW(coordinator.run({item}), std::invalid_argument);
  EXPECT_TRUE(coordinator.worker_stats().empty());
}

TEST(DistributedService, MissingWorkerExecutableDegradesToSerial) {
  // exec failure = instant child exit on every spawn, including every
  // respawn.  The chaos-hardened coordinator must exhaust the retry
  // budget and then finish the batch in-process (degraded) instead of
  // hanging, crashing, or throwing away the sweep.
  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 6;
  item.backends = {"tdma"};
  CoordinatorConfig config = config_for(2);
  config.worker_exe = "/no/such/binary";
  config.retries = 1;
  config.backoff_base_ms = 1;  // keep the retry schedule test-fast
  config.quarantine_crashes = 100;  // isolate degradation from quarantine
  ShardCoordinator coordinator(std::move(config));
  const BatchReport report = coordinator.run({item});
  ASSERT_TRUE(report.degraded);
  ASSERT_TRUE(report.all_ok()) << "the item must complete in-process";
  // One shard for one item -> one slot, dying 1 + retries times.
  EXPECT_EQ(report.worker_failures, 2u);
  EXPECT_TRUE(report.quarantined_items.empty());
  ASSERT_EQ(coordinator.worker_stats().size(), 1u);
  EXPECT_TRUE(coordinator.worker_stats()[0].failed);
  EXPECT_EQ(coordinator.worker_stats()[0].respawns, 1u);
}

TEST(DistributedService, ConfigValidation) {
  CoordinatorConfig zero = config_for(2);
  zero.workers = 0;
  EXPECT_THROW(ShardCoordinator{zero}, std::invalid_argument);
  CoordinatorConfig no_exe = config_for(2);
  no_exe.worker_exe.clear();
  EXPECT_THROW(ShardCoordinator{no_exe}, std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
