// Cross-validation of the dense-index engine against the seed paths.
//
// The dense engine (PointIndexer ids, bitmask torus search, coset slot
// tables, stamped collision counters) must be an exact drop-in: same
// tilings in the same order, same slots, same collision verdicts and
// witnesses.  Every test here runs both implementations and compares.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/collision.hpp"
#include "core/tiling_scheduler.hpp"
#include "graph/interference.hpp"
#include "lattice/point_index.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {
namespace {

// ---------------------------------------------------------------------------
// PointIndexer
// ---------------------------------------------------------------------------

TEST(PointIndexer, BoxModeMatchesBoxOrder) {
  const Box box({-2, 1}, {1, 4});
  const PointIndexer idx = PointIndexer::for_box(box);
  const PointVec pts = box.points();
  ASSERT_EQ(idx.size(), pts.size());
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(idx.id_of(pts[i]), i);
    EXPECT_EQ(idx.point_of(i), pts[i]);
  }
  EXPECT_EQ(idx.id_of(Point{2, 2}), PointIndexer::kInvalid);
  EXPECT_EQ(idx.id_of(Point{0, 0}), PointIndexer::kInvalid);
  EXPECT_FALSE(idx.contains(Point{-3, 1}));
}

TEST(PointIndexer, SublatticeModeMatchesCosetRepresentatives) {
  for (const Sublattice& m :
       {Sublattice::diagonal({3, 4}),
        Sublattice::from_vectors({Point{2, 1}, Point{0, 3}}),
        Sublattice::diagonal({2, 3, 2})}) {
    const PointIndexer idx = PointIndexer::for_sublattice(m);
    const PointVec reps = m.coset_representatives();
    ASSERT_EQ(idx.size(), static_cast<std::size_t>(m.index()));
    ASSERT_EQ(idx.size(), reps.size());
    for (std::uint32_t i = 0; i < reps.size(); ++i) {
      EXPECT_EQ(idx.point_of(i), reps[i]);
      EXPECT_EQ(idx.id_of(reps[i]), i);
    }
  }
}

TEST(PointIndexer, PointsModeRoundTripsAndRejectsOutsiders) {
  const PointVec pts = {Point{5, 0}, Point{-1, 2}, Point{3, 3}};
  const PointIndexer idx = PointIndexer::for_points(pts);
  ASSERT_EQ(idx.size(), pts.size());
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(idx.id_of(pts[i]), i);
    EXPECT_EQ(idx.point_of(i), pts[i]);
  }
  // In-hull but not a member.
  EXPECT_EQ(idx.id_of(Point{0, 0}), PointIndexer::kInvalid);
  EXPECT_THROW(PointIndexer::for_points({Point{1, 1}, Point{1, 1}}),
               std::invalid_argument);
}

TEST(PointIndexer, TryForPointsDeclinesHugeHulls) {
  const PointVec scattered = {Point{0, 0}, Point{1 << 20, 1 << 20}};
  EXPECT_FALSE(
      PointIndexer::try_for_points(scattered, /*max_grid_cells=*/1 << 16)
          .has_value());
  EXPECT_TRUE(
      PointIndexer::try_for_points({Point{0, 0}, Point{3, 3}}, 1 << 16)
          .has_value());
}

// ---------------------------------------------------------------------------
// Torus search: dense engine == legacy engine, result for result
// ---------------------------------------------------------------------------

void expect_same_tilings(const std::vector<Prototile>& protos,
                         const Sublattice& period, bool require_all) {
  TorusSearchConfig dense_cfg, legacy_cfg;
  dense_cfg.require_all_prototiles = require_all;
  dense_cfg.use_dense_engine = true;
  legacy_cfg.require_all_prototiles = require_all;
  legacy_cfg.use_dense_engine = false;
  const auto dense = all_tilings_on_torus(protos, period, 100'000, dense_cfg);
  const auto legacy =
      all_tilings_on_torus(protos, period, 100'000, legacy_cfg);
  ASSERT_EQ(dense.size(), legacy.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense[i].placements(), legacy[i].placements())
        << "tiling " << i << " differs";
  }
}

TEST(DenseTorusSearch, MatchesLegacyOnFig2ChebyshevBall) {
  // Figure 2 (left): the 3x3 Chebyshev ball tiles with period 3Z x 3Z.
  expect_same_tilings({shapes::chebyshev_ball(2, 1)},
                      Sublattice::diagonal({3, 3}), false);
  expect_same_tilings({shapes::chebyshev_ball(2, 1)},
                      Sublattice::diagonal({6, 6}), false);
}

TEST(DenseTorusSearch, MatchesLegacyOnFig3DirectionalAntenna) {
  // Figures 2 (right) / 3: the 2x4 directional-antenna block.
  expect_same_tilings({shapes::directional_antenna()},
                      Sublattice::diagonal({4, 4}), false);
  expect_same_tilings({shapes::directional_antenna()},
                      Sublattice::diagonal({8, 4}), false);
}

TEST(DenseTorusSearch, MatchesLegacyOnFig5MixedTetrominoes) {
  // Figure 5 (left): genuinely mixed S/Z tetromino tilings.
  expect_same_tilings({shapes::s_tetromino(), shapes::z_tetromino()},
                      Sublattice::diagonal({4, 4}), true);
}

TEST(DenseTorusSearch, MatchesLegacyOnNonDiagonalPeriod) {
  expect_same_tilings({shapes::l1_ball(2, 1)},
                      Sublattice::from_vectors({Point{1, 2}, Point{-2, 1}}),
                      false);
}

TEST(DenseTorusSearch, SweepAgreesWithLegacySweep) {
  for (const Prototile& tile :
       {shapes::chebyshev_ball(2, 1), shapes::directional_antenna(),
        shapes::l_tromino()}) {
    TorusSearchConfig dense_cfg, legacy_cfg;
    legacy_cfg.use_dense_engine = false;
    const auto a = search_periodic_tiling({tile}, dense_cfg);
    const auto b = search_periodic_tiling({tile}, legacy_cfg);
    ASSERT_EQ(a.has_value(), b.has_value());
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->placements(), b->placements());
    EXPECT_EQ(a->period().basis(), b->period().basis());
  }
}

TEST(DenseTorusSearch, RespectsNodeBudgetLikeLegacy) {
  TorusSearchConfig dense_cfg, legacy_cfg;
  dense_cfg.node_limit = 10;
  legacy_cfg.node_limit = 10;
  legacy_cfg.use_dense_engine = false;
  const auto a = find_tiling_on_torus({shapes::s_tetromino()},
                                      Sublattice::diagonal({4, 4}), dense_cfg);
  const auto b = find_tiling_on_torus({shapes::s_tetromino()},
                                      Sublattice::diagonal({4, 4}), legacy_cfg);
  EXPECT_EQ(a.has_value(), b.has_value());
}

// ---------------------------------------------------------------------------
// Slot table: table == covering()-based reference
// ---------------------------------------------------------------------------

TEST(SlotTable, AgreesWithCoveringOnMixedNonRespectableTiling) {
  // Figure 5: 2-prototile S/Z tiling; it is non-respectable, so the slot
  // structure genuinely mixes both neighborhoods.
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tiling =
      find_tiling_on_torus({shapes::s_tetromino(), shapes::z_tetromino()},
                           Sublattice::diagonal({4, 4}), cfg);
  ASSERT_TRUE(tiling.has_value());
  ASSERT_FALSE(tiling->is_respectable());
  const TilingSchedule sched(*tiling);
  Box::centered(2, 9).for_each([&](const Point& p) {
    EXPECT_EQ(sched.slot_of(p), sched.slot_of_reference(p)) << "at " << p;
  });
}

TEST(SlotTable, AgreesWithCoveringOnSinglePrototile) {
  const auto tiling = search_periodic_tiling({shapes::directional_antenna()});
  ASSERT_TRUE(tiling.has_value());
  const TilingSchedule sched(*tiling);
  Box::centered(2, 12).for_each([&](const Point& p) {
    EXPECT_EQ(sched.slot_of(p), sched.slot_of_reference(p)) << "at " << p;
  });
}

TEST(SlotTable, FastModAndFallbackAgreeAtExtremeCoordinates) {
  // slot_of serves nearby points via division-free fastmod and falls back
  // to the general reduce beyond +-2^30; both must match the reference.
  const auto tiling = search_periodic_tiling({shapes::chebyshev_ball(2, 1)});
  ASSERT_TRUE(tiling.has_value());
  const TilingSchedule sched(*tiling);
  const std::int64_t big = std::int64_t{1} << 40;  // far past the cutoff
  const std::int64_t edge = (std::int64_t{1} << 30) - 1;
  for (const Point& p :
       {Point{big, -big}, Point{-big + 7, big + 11}, Point{edge, -edge},
        Point{edge + 2, edge + 2}, Point{-123456789, 987654321}}) {
    EXPECT_EQ(sched.slot_of(p), sched.slot_of_reference(p)) << "at " << p;
  }
}

TEST(SlotTable, SendersInSlotMatchesReferenceFilter) {
  const auto tiling = search_periodic_tiling({shapes::chebyshev_ball(2, 1)});
  ASSERT_TRUE(tiling.has_value());
  const TilingSchedule sched(*tiling);
  const Box box = Box::centered(2, 6);
  for (std::uint32_t s = 0; s < sched.period(); ++s) {
    PointVec expected;
    box.for_each([&](const Point& p) {
      if (sched.slot_of_reference(p) == s) expected.push_back(p);
    });
    EXPECT_EQ(sched.senders_in_slot(s, box), expected) << "slot " << s;
  }
}

// ---------------------------------------------------------------------------
// Collision checker: dense == reference, including the seeded witness
// ---------------------------------------------------------------------------

TEST(DenseCollision, AgreesOnCollisionFreeMultiPrototileDeployment) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tiling =
      find_tiling_on_torus({shapes::s_tetromino(), shapes::z_tetromino()},
                           Sublattice::diagonal({4, 4}), cfg);
  ASSERT_TRUE(tiling.has_value());
  const TilingSchedule sched(*tiling);
  const Deployment d = Deployment::from_tiling(*tiling, Box::centered(2, 7));
  const SensorSlots slots = assign_slots(sched, d);
  const CollisionReport dense = check_collision_free(d, slots);
  const CollisionReport ref = check_collision_free_reference(d, slots);
  EXPECT_TRUE(dense.collision_free);
  EXPECT_TRUE(ref.collision_free);
  EXPECT_EQ(dense.pairs_checked, ref.pairs_checked);
}

TEST(DenseCollision, AgreesOnSeededCollision) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tiling =
      find_tiling_on_torus({shapes::s_tetromino(), shapes::z_tetromino()},
                           Sublattice::diagonal({4, 4}), cfg);
  ASSERT_TRUE(tiling.has_value());
  const TilingSchedule sched(*tiling);
  const Deployment d = Deployment::from_tiling(*tiling, Box::centered(2, 7));
  SensorSlots slots = assign_slots(sched, d);
  // Seed a collision: force a sensor into the slot of a conflicting
  // neighbor (positions 0 and 1 are lattice neighbors, so their coverages
  // intersect whenever they share a slot).
  ASSERT_TRUE(sensors_conflict(d, 0, 1));
  slots.slot[1] = slots.slot[0];
  const CollisionReport dense = check_collision_free(d, slots);
  const CollisionReport ref = check_collision_free_reference(d, slots);
  ASSERT_FALSE(dense.collision_free);
  ASSERT_FALSE(ref.collision_free);
  EXPECT_EQ(dense.pairs_checked, ref.pairs_checked);
  ASSERT_TRUE(dense.witness.has_value());
  ASSERT_TRUE(ref.witness.has_value());
  EXPECT_EQ(dense.witness->slot, ref.witness->slot);
  EXPECT_EQ(dense.witness->sensor_a, ref.witness->sensor_a);
  EXPECT_EQ(dense.witness->sensor_b, ref.witness->sensor_b);
  EXPECT_EQ(dense.witness->point, ref.witness->point);
}

// ---------------------------------------------------------------------------
// Deployment fallbacks and conflict predicates
// ---------------------------------------------------------------------------

TEST(DeploymentIndex, ScatteredDeploymentFallsBackToHashing) {
  // Hull far beyond the dense-grid cap: sensor_at must still answer.
  const PointVec positions = {Point{0, 0}, Point{1 << 20, 1 << 20}};
  const Deployment d =
      Deployment::uniform(positions, shapes::chebyshev_ball(2, 1));
  EXPECT_FALSE(d.coverage_grid().has_value());
  ASSERT_TRUE(d.sensor_at(Point{0, 0}).has_value());
  EXPECT_EQ(*d.sensor_at(Point{1 << 20, 1 << 20}), 1u);
  EXPECT_FALSE(d.sensor_at(Point{1, 1}).has_value());
  EXPECT_FALSE(sensors_conflict(d, 0, 1));
  // The hashed conflict-graph path: two isolated sensors, zero edges.
  EXPECT_EQ(build_conflict_graph(d).edge_count(), 0u);
}

TEST(DeploymentIndex, DenseAndHashedConflictGraphsAgree) {
  const Deployment d =
      Deployment::grid(Box::centered(2, 4), shapes::l1_ball(2, 1));
  ASSERT_TRUE(d.coverage_grid().has_value());
  const Graph dense = build_conflict_graph(d);
  // sensors_conflict is an independent oracle for every pair.
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (std::uint32_t j = i + 1; j < d.size(); ++j) {
      EXPECT_EQ(dense.has_edge(i, j), sensors_conflict(d, i, j))
          << "pair (" << i << ", " << j << ")";
    }
  }
}

}  // namespace
}  // namespace latticesched
