// Fixed-polyomino enumeration, the exactness census, and tiling
// equivalence up to translation.
#include <gtest/gtest.h>

#include "tiling/enumerate.hpp"
#include "tiling/equivalence.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {
namespace {

TEST(EnumeratePolyominoes, KnownCounts) {
  // OEIS A001168: fixed polyominoes.
  EXPECT_EQ(enumerate_fixed_polyominoes(1).size(), 1u);
  EXPECT_EQ(enumerate_fixed_polyominoes(2).size(), 2u);
  EXPECT_EQ(enumerate_fixed_polyominoes(3).size(), 6u);
  EXPECT_EQ(enumerate_fixed_polyominoes(4).size(), 19u);
  EXPECT_EQ(enumerate_fixed_polyominoes(5).size(), 63u);
  EXPECT_EQ(enumerate_fixed_polyominoes(6).size(), 216u);
}

TEST(EnumeratePolyominoes, AllConnectedCanonicalAndDistinct) {
  const auto tiles = enumerate_fixed_polyominoes(5);
  std::set<PointVec> seen;
  for (const Prototile& t : tiles) {
    EXPECT_EQ(t.size(), 5u);
    EXPECT_TRUE(t.is_connected());
    EXPECT_TRUE(t.contains(Point{0, 0}));
    // Canonical anchor: origin is the lexicographically smallest cell.
    EXPECT_EQ(t.points().front(), (Point{0, 0}));
    EXPECT_TRUE(seen.insert(t.points()).second);
  }
}

TEST(EnumeratePolyominoes, ContainsTheNamedTetrominoes) {
  const auto tiles = enumerate_fixed_polyominoes(4);
  auto canonical = [](const Prototile& t) {
    return t.normalized_at(t.points().front()).points();
  };
  int found = 0;
  for (const Prototile& t : tiles) {
    if (t.points() == canonical(shapes::s_tetromino())) ++found;
    if (t.points() == canonical(shapes::z_tetromino())) ++found;
    if (t.points() == canonical(shapes::straight_polyomino(4))) ++found;
    if (t.points() == canonical(shapes::rectangle(2, 2))) ++found;
  }
  EXPECT_EQ(found, 4);
}

TEST(ExactnessCensusTest, SmallSizesAllExact) {
  // Every fixed polyomino with up to 4 cells tiles the plane by
  // translations (all dominoes/trominoes/tetrominoes are exact).
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    const ExactnessCensus c = exactness_census(n);
    EXPECT_EQ(c.polyominoes, enumerate_fixed_polyominoes(n).size());
    EXPECT_EQ(c.exact, c.polyominoes) << "size " << n;
  }
}

TEST(ExactnessCensusTest, NonExactTilesAppearAtFive) {
  const ExactnessCensus c5 = exactness_census(5);
  EXPECT_EQ(c5.polyominoes, 63u);
  EXPECT_LT(c5.exact, c5.polyominoes);
  EXPECT_GT(c5.exact, 0u);
  // The census must agree with the independent sublattice decider.
  std::size_t lattice_exact = 0;
  for (const Prototile& t : enumerate_fixed_polyominoes(5)) {
    if (find_lattice_tiling(t).has_value()) ++lattice_exact;
  }
  EXPECT_EQ(c5.exact, lattice_exact);
}

TEST(Equivalence, TranslatedTilingsAreEqual) {
  const Sublattice period = Sublattice::diagonal({4, 4});
  const auto tilings = all_tilings_on_torus({shapes::s_tetromino()}, period,
                                            1000);
  ASSERT_GE(tilings.size(), 2u);
  // Every pure-S tiling of the 4x4 torus with translate structure is a
  // translate class; build an explicit translate of the first and check.
  const Tiling& base = tilings.front();
  std::vector<std::pair<Point, std::uint32_t>> shifted;
  for (const auto& [t, k] : base.placements()) {
    shifted.emplace_back(t + Point{1, 2}, k);
  }
  const Tiling moved =
      Tiling::periodic(base.prototiles(), period, shifted);
  EXPECT_TRUE(tilings_equal_up_to_translation(base, moved));
}

TEST(Equivalence, DifferentTilingsAreNotEqual) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto mixed = all_tilings_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), 10, cfg);
  const auto pure = all_tilings_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), 10);
  ASSERT_FALSE(mixed.empty());
  // A mixed tiling can never be a translate of a pure-S one.
  bool found_pure_s = false;
  for (const Tiling& p : pure) {
    bool uses_z = false;
    for (const auto& [t, k] : p.placements()) uses_z |= (k == 1);
    if (!uses_z) {
      EXPECT_FALSE(tilings_equal_up_to_translation(mixed.front(), p));
      found_pure_s = true;
      break;
    }
  }
  EXPECT_TRUE(found_pure_s);
}

TEST(Equivalence, DedupReducesTranslateClasses) {
  const auto tilings = all_tilings_on_torus({shapes::rectangle(2, 2)},
                                            Sublattice::diagonal({4, 4}),
                                            1000);
  // The 2x2-block tilings of the 4x4 torus: 4 aligned (translate classes
  // of the grid tiling) + shifted-row/column variants.
  const auto classes = dedup_tilings_up_to_translation(tilings);
  EXPECT_LT(classes.size(), tilings.size());
  // Representatives are pairwise inequivalent.
  for (std::size_t i = 0; i < classes.size(); ++i) {
    for (std::size_t j = i + 1; j < classes.size(); ++j) {
      EXPECT_FALSE(tilings_equal_up_to_translation(classes[i], classes[j]));
    }
  }
  // Every original tiling is equivalent to some representative.
  for (const Tiling& t : tilings) {
    bool matched = false;
    for (const Tiling& c : classes) {
      if (tilings_equal_up_to_translation(t, c)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched);
  }
}

TEST(Equivalence, DifferentPeriodsNeverEqual) {
  const auto a = make_lattice_tiling(shapes::rectangle(2, 2));
  const auto b = find_tiling_on_torus({shapes::rectangle(2, 2)},
                                      Sublattice::diagonal({4, 4}));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(tilings_equal_up_to_translation(*a, *b));
}

}  // namespace
}  // namespace latticesched
