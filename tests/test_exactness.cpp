// The unified exactness pipeline, and the key cross-validation property:
// for polyominoes, the BN criterion and the lattice-tiling search must
// agree (Beauquier–Nivat + Wijshoff–van Leeuwen: an exact polyomino always
// admits a regular/lattice tiling).
#include "tiling/exactness.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(Exactness, PolyominoUsesBnAndProducesTiling) {
  const ExactnessResult r = decide_exactness(shapes::chebyshev_ball(2, 1));
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.method, ExactnessMethod::kBeauquierNivat);
  ASSERT_TRUE(r.tiling.has_value());
  std::string err;
  EXPECT_TRUE(r.tiling->verify_window(Box::centered(2, 8), &err)) << err;
  ASSERT_TRUE(r.bn.has_value());
  EXPECT_TRUE(r.bn->exact);
}

TEST(Exactness, DisconnectedTileFallsThroughToTorus) {
  const ExactnessResult r =
      decide_exactness(Prototile::from_ascii({"X.X"}, "gap-duo"));
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.method, ExactnessMethod::kTorusSearch);
  ASSERT_TRUE(r.tiling.has_value());
}

TEST(Exactness, NonExactDisconnectedTileUndecided) {
  TorusSearchConfig cfg;
  cfg.max_period_cells = 36;
  cfg.node_limit = 200'000;
  const ExactnessResult r =
      decide_exactness(Prototile::from_ascii({"XX.X"}, "013"), cfg);
  EXPECT_FALSE(r.decided);
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.method, ExactnessMethod::kUndecided);
}

TEST(Exactness, HoleyTileUndecidedByBudget) {
  TorusSearchConfig cfg;
  cfg.max_period_cells = 32;
  cfg.node_limit = 100'000;
  const ExactnessResult r = decide_exactness(
      Prototile::from_ascii({"XXX", "X.X", "XXX"}, "ring"), cfg);
  // BN is not applicable (not simply connected), searches find nothing.
  EXPECT_FALSE(r.exact);
}

TEST(Exactness, MethodToString) {
  EXPECT_STREQ(to_string(ExactnessMethod::kBeauquierNivat),
               "beauquier-nivat");
  EXPECT_STREQ(to_string(ExactnessMethod::kLatticeTiling), "lattice-tiling");
  EXPECT_STREQ(to_string(ExactnessMethod::kTorusSearch), "torus-search");
  EXPECT_STREQ(to_string(ExactnessMethod::kUndecided), "undecided");
}

TEST(Exactness, NonPolyomino3DUsesLatticeSearch) {
  PointVec cells;
  for (std::int64_t x = 0; x < 2; ++x) {
    for (std::int64_t y = 0; y < 2; ++y) {
      for (std::int64_t z = 0; z < 1; ++z) {
        cells.push_back(Point{x, y, z});
      }
    }
  }
  const ExactnessResult r = decide_exactness(Prototile(cells, "slab"));
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.method, ExactnessMethod::kLatticeTiling);
}

// THE cross-validation property: BN exact <=> a lattice tiling exists,
// for every randomly grown polyomino.  This pits two completely
// independent implementations (boundary-word combinatorics vs HNF coset
// arithmetic) against each other.
class BnVsLatticeSearch : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BnVsLatticeSearch, DecidersAgreeOnRandomPolyominoes) {
  Rng rng(9000 + GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const Prototile t = test_helpers::random_polyomino(rng, GetParam());
    const BnResult bn = bn_exactness(t);
    if (!bn.applicable) continue;  // holey: BN cannot speak
    const bool lattice_tiles = find_lattice_tiling(t).has_value();
    EXPECT_EQ(bn.exact, lattice_tiles)
        << "deciders disagree on:\n"
        << t.to_ascii() << "BN=" << bn.exact
        << " lattice=" << lattice_tiles;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BnVsLatticeSearch,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace latticesched
