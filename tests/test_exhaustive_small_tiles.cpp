// Exhaustive sweeps over ALL fixed polyominoes of small sizes: every
// exact tile must drive the complete paper pipeline (tiling, schedule,
// collision-freedom, optimality); every non-exact tile must be rejected
// consistently by both deciders.
#include <gtest/gtest.h>

#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/bn_criterion.hpp"
#include "tiling/enumerate.hpp"
#include "tiling/lattice_tiling_search.hpp"

namespace latticesched {
namespace {

class ExhaustiveSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExhaustiveSize, EveryExactTileSchedulesEveryNonExactTileRejects) {
  const std::size_t cells = GetParam();
  std::size_t exact_count = 0;
  for (const Prototile& tile : enumerate_fixed_polyominoes(cells)) {
    const BnResult bn = bn_exactness(tile);
    ASSERT_TRUE(bn.applicable) << tile.to_ascii();
    const auto lattice = find_lattice_tiling(tile);
    ASSERT_EQ(bn.exact, lattice.has_value())
        << "decider disagreement on\n"
        << tile.to_ascii();
    if (!bn.exact) continue;
    ++exact_count;

    const Tiling tiling = Tiling::lattice_tiling(tile, *lattice);
    std::string err;
    ASSERT_TRUE(tiling.verify_window(Box::centered(2, 2 * (std::int64_t)cells + 2), &err))
        << tile.to_ascii() << err;

    const TilingSchedule sched{Tiling(tiling)};
    ASSERT_EQ(sched.period(), cells);
    EXPECT_TRUE(sched.optimal());

    // Collision-free on a window comfortably larger than the tile.
    const Box window = Box::centered(2, static_cast<std::int64_t>(cells) + 3);
    const Deployment d = Deployment::grid(window, tile);
    EXPECT_TRUE(check_collision_free(d, sched).collision_free)
        << tile.to_ascii();
  }
  EXPECT_GT(exact_count, 0u);
}

// Sizes 1..5 — 1 + 2 + 6 + 19 + 63 = 91 tiles swept end to end.
INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveSize,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ExhaustivePentominoes, KnownExactCountIsStable) {
  // Pin the pentomino census: the count of exact fixed pentominoes is a
  // mathematical constant; a change means an exactness-decider
  // regression.  (Value established jointly by BOTH deciders, which this
  // suite asserts to agree everywhere.)
  const ExactnessCensus c = exactness_census(5);
  std::size_t lattice_exact = 0;
  for (const Prototile& t : enumerate_fixed_polyominoes(5)) {
    if (find_lattice_tiling(t).has_value()) ++lattice_exact;
  }
  EXPECT_EQ(c.exact, lattice_exact);
  EXPECT_EQ(c.polyominoes, 63u);
  // Non-exact pentominoes exist (e.g. some orientations cannot tile by
  // translation even though all 12 free pentominoes tile with rotations).
  EXPECT_LT(c.exact, 63u);
}

TEST(ExhaustiveTetrominoes, RoleOptimaAllEqualFour) {
  // Every exact fixed tetromino's tiling-constrained optimum is 4.
  for (const Prototile& tile : enumerate_fixed_polyominoes(4)) {
    const auto lattice = find_lattice_tiling(tile);
    ASSERT_TRUE(lattice.has_value()) << tile.to_ascii();
    const Tiling tiling = Tiling::lattice_tiling(tile, *lattice);
    const TilingOptimum opt = optimal_slots_for_tiling(tiling);
    EXPECT_TRUE(opt.proven) << tile.to_ascii();
    EXPECT_EQ(opt.optimal_slots, 4u) << tile.to_ascii();
  }
}

}  // namespace
}  // namespace latticesched
