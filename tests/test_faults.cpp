// Chaos-hardening tests: the deterministic fault-injection framework
// (dist/faults.hpp) and the coordinator's survival guarantees under it —
// deadlines, the liveness state machine, retry/respawn, quarantine, and
// graceful serial degradation.
//
// The property every fault-matrix case pins: under a seeded FaultPlan
// the distributed sweep completes with ZERO lost items and a merged
// report identical (modulo wall times and the failure counters) to the
// single-process serial run.
#include <gtest/gtest.h>

#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/plan_service.hpp"
#include "core/report.hpp"
#include "dist/coordinator.hpp"
#include "dist/faults.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

using dist::CoordinatorConfig;
using dist::FaultKind;
using dist::FaultPlan;
using dist::ShardCoordinator;
using dist::WireIoStatus;

// ---- fault spec grammar ---------------------------------------------------

TEST(FaultPlan, ParseToSpecRoundTrip) {
  const std::string spec =
      "seed=42;worker=1:crash:after-frames=1;"
      "worker=*:hang-ms=500:after-frames=2:gens=all;"
      "worker=0:drop-frame:after-frames=3:gens=2;"
      "worker=2:truncate-frame:after-frames=0;"
      "worker=*:delay-io-ms=10:after-frames=0;"
      "cache:corrupt-write:nth=3:worker=1";
  const FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.actions.size(), 6u);
  EXPECT_EQ(plan.actions[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.actions[0].worker, 1);
  EXPECT_EQ(plan.actions[0].after_frames, 1u);
  EXPECT_EQ(plan.actions[0].gens, 1u);
  EXPECT_EQ(plan.actions[1].kind, FaultKind::kHangMs);
  EXPECT_EQ(plan.actions[1].worker, -1);
  EXPECT_EQ(plan.actions[1].ms, 500u);
  EXPECT_EQ(plan.actions[1].gens, 0u);  // "all"
  EXPECT_EQ(plan.actions[2].gens, 2u);
  EXPECT_EQ(plan.actions[5].kind, FaultKind::kCorruptCacheWrite);
  EXPECT_EQ(plan.actions[5].nth, 3u);
  EXPECT_EQ(plan.actions[5].worker, 1);
  EXPECT_TRUE(plan.has_cache_faults());

  // to_spec is a parse fixed point: parse(to_spec(parse(s))) == the plan.
  const FaultPlan reparsed = FaultPlan::parse(plan.to_spec());
  EXPECT_EQ(reparsed.to_spec(), plan.to_spec());

  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_FALSE(FaultPlan::parse("").has_cache_faults());
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"worker=0",                     // missing kind
        "worker=0:explode",             // unknown kind
        "worker=x:crash",               // bad index
        "worker=9999:crash",            // index out of range
        "pod=0:crash",                  // unknown target
        "worker=0:crash:nth=1",         // nth on a wire fault
        "cache:drop-frame",             // cache only corrupts writes
        "cache:corrupt-write:nth=0",    // nth is 1-based
        "worker=0:hang-ms=abc",         // bad duration
        "seed=nope;worker=0:crash",     // bad seed
        "worker=0:crash:sometimes"}) {  // unknown param
    EXPECT_THROW(FaultPlan::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(FaultPlan, ForWorkerFiltersSlotAndGeneration) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7;worker=1:crash:after-frames=1;"
      "worker=*:delay-io-ms=5:gens=all;"
      "worker=0:drop-frame:gens=2;cache:corrupt-write:worker=1");

  // Slot 1, generation 0: its crash, the wildcard delay, its cache fault.
  const FaultPlan w1g0 = plan.for_worker(1, 0);
  ASSERT_EQ(w1g0.actions.size(), 3u);
  EXPECT_EQ(w1g0.seed, 7u);
  // Forwarded unscoped — the worker applies everything it is handed.
  for (const auto& action : w1g0.actions) EXPECT_EQ(action.worker, -1);

  // Slot 1, generation 1: the crash covered only generation 0 (gens=1
  // default); the cache fault likewise.  Only the gens=all delay stays.
  const FaultPlan w1g1 = plan.for_worker(1, 1);
  ASSERT_EQ(w1g1.actions.size(), 1u);
  EXPECT_EQ(w1g1.actions[0].kind, FaultKind::kDelayIoMs);

  // Slot 0: no crash; drop-frame covers generations 0 and 1, not 2.
  EXPECT_EQ(plan.for_worker(0, 0).actions.size(), 2u);
  EXPECT_EQ(plan.for_worker(0, 1).actions.size(), 2u);
  EXPECT_EQ(plan.for_worker(0, 2).actions.size(), 1u);
}

TEST(FaultPlan, CacheCorruptionHookFlipsOneByteOfNthWrite) {
  const FaultPlan plan = FaultPlan::parse("seed=5;cache:corrupt-write:nth=2");
  const auto hook = dist::cache_corruption_hook(plan);
  ASSERT_TRUE(static_cast<bool>(hook));
  const std::string original = "lattice-tilings 2\nbody body body\nend\n";
  std::string first = original;
  hook(first);
  EXPECT_EQ(first, original) << "nth=2 must not touch the first write";
  std::string second = original;
  hook(second);
  EXPECT_NE(second, original);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (second[i] != original[i]) ++flipped;
  }
  EXPECT_EQ(flipped, 1u) << "exactly one byte flips";

  EXPECT_FALSE(static_cast<bool>(
      dist::cache_corruption_hook(FaultPlan::parse("worker=0:crash"))));
}

// ---- deadline-bounded wire I/O --------------------------------------------

TEST(WireDeadline, ReadTimesOutOnSilenceAndReadsAfterData) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(dist::set_nonblocking(sv[0]));
  dist::WireMessage got;
  EXPECT_EQ(dist::read_frame_deadline(sv[0], &got, 50), WireIoStatus::kTimeout);
  ASSERT_TRUE(dist::write_frame(sv[1], {"PING", ""}));
  EXPECT_EQ(dist::read_frame_deadline(sv[0], &got, 1000), WireIoStatus::kOk);
  EXPECT_EQ(got.verb, "PING");
  ::close(sv[1]);
  EXPECT_EQ(dist::read_frame_deadline(sv[0], &got, 50), WireIoStatus::kClosed);
  ::close(sv[0]);
}

TEST(WireDeadline, TruncatedFrameTimesOutMidFrame) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(dist::set_nonblocking(sv[0]));
  // A length prefix promising more bytes than ever arrive: the deadline
  // bounds the WHOLE frame, so the reader must give up, not spin.
  const unsigned char prefix[4] = {100, 0, 0, 0};
  ASSERT_EQ(::send(sv[1], prefix, 4, 0), 4);
  ASSERT_EQ(::send(sv[1], "RESU", 4, 0), 4);
  dist::WireMessage got;
  EXPECT_EQ(dist::read_frame_deadline(sv[0], &got, 100),
            WireIoStatus::kTimeout);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---- worker liveness (the reader thread) ----------------------------------

TEST(WorkerLiveness, IdleWorkerAnswersPingWithPong) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  int exit_code = -1;
  std::thread worker([&] { exit_code = dist::run_worker(sv[1], {}); });
  dist::WireMessage got;
  ASSERT_TRUE(dist::read_frame(sv[0], &got));
  EXPECT_EQ(got.verb, "HELLO");
  ASSERT_TRUE(dist::write_frame(sv[0], {"PING", ""}));
  ASSERT_TRUE(dist::read_frame(sv[0], &got));
  EXPECT_EQ(got.verb, "PONG");
  EXPECT_EQ(got.body, "");
  ASSERT_TRUE(dist::write_frame(sv[0], {"SHUTDOWN", ""}));
  worker.join();
  EXPECT_EQ(exit_code, 0);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ---- coordinator under injected faults ------------------------------------

CoordinatorConfig chaos_config(std::size_t workers,
                               const std::string& fault_plan) {
  CoordinatorConfig config;
  config.workers = workers;
  config.worker_exe = LATTICESCHED_CLI_PATH;
  config.worker_threads = 1;
  config.fault_plan = fault_plan;
  config.worker_timeout_ms = 500;
  config.max_silent_pings = 2;
  config.retries = 2;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 50;
  return config;
}

/// Cheap, fast batch (tdma plans in microseconds) so per-frame deadlines
/// can be tight without killing healthy-but-busy workers.
std::vector<BatchItem> small_batch() {
  std::vector<BatchItem> items;
  for (const std::int64_t n : {4, 5, 6, 7}) {
    BatchItem item;
    item.query.scenario = "grid";
    item.query.params.n = n;
    item.backends = {"tdma", "greedy"};
    items.push_back(std::move(item));
  }
  return items;
}

std::string items_json(const BatchReport& report) {
  BatchReport items_only;
  items_only.items = report.items;
  std::string json = batch_report_to_json(items_only);
  // Blank per-result wall times the same way test_dist.cpp does.
  const std::string needle = "\"wall_ms\": ";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    std::size_t end = pos;
    while (end < json.size() && json[end] != ',' && json[end] != '}' &&
           json[end] != '\n') {
      ++end;
    }
    json.replace(pos, end - pos, "0");
    ++pos;
  }
  return json;
}

TEST(ChaosCoordinator, HungWorkerIsDetectedKilledAndReplaced) {
  // The hung-worker regression (the bug class this layer exists for):
  // worker 1 wedges for 60 s while sending its first RESULT, holding the
  // channel write lock so even PONGs cannot flow.  Pre-hardening this
  // hung the whole sweep on poll(-1); now the deadline moves the worker
  // to Suspect, the silent probe kills it, the respawned generation is
  // healthy, and the sweep finishes in deadline-budget time.
  const std::vector<BatchItem> items = small_batch();
  set_parallel_threads(1);
  PlanService service;
  const BatchReport serial = service.run(items);
  set_parallel_threads(0);

  ShardCoordinator coordinator(
      chaos_config(3, "worker=1:hang-ms=60000:after-frames=1"));
  const BatchReport distributed = coordinator.run(items);

  ASSERT_TRUE(distributed.all_ok());
  EXPECT_EQ(distributed.worker_timeouts, 1u);
  EXPECT_EQ(distributed.worker_failures, 0u);
  EXPECT_FALSE(distributed.degraded);
  EXPECT_TRUE(distributed.quarantined_items.empty());
  EXPECT_LT(distributed.wall_seconds, 30.0)
      << "detection must cost deadline budgets, not the hang duration";
  ASSERT_EQ(coordinator.worker_stats().size(), 3u);
  EXPECT_TRUE(coordinator.worker_stats()[1].timed_out);
  EXPECT_FALSE(coordinator.worker_stats()[1].failed);
  EXPECT_EQ(coordinator.worker_stats()[1].respawns, 1u);
  EXPECT_EQ(items_json(distributed), items_json(serial));
}

TEST(ChaosCoordinator, FaultMatrixLosesNoItems) {
  // The acceptance property, swept across every wire-fault kind: under
  // each seeded plan the distributed run completes every item and the
  // planned results are identical to the serial run's.
  const std::vector<BatchItem> items = small_batch();
  set_parallel_threads(1);
  PlanService service;
  const BatchReport serial = service.run(items);
  set_parallel_threads(0);
  ASSERT_TRUE(serial.all_ok());
  const std::string expected = items_json(serial);

  const struct {
    const char* plan;
    bool survivable;  ///< no worker should die at all
  } cases[] = {
      {"worker=0:crash:after-frames=1", false},
      {"worker=1:hang-ms=60000:after-frames=1", false},
      {"worker=1:hang-ms=50:after-frames=1", true},  // short blip, no kill
      {"worker=1:drop-frame:after-frames=1", false},
      {"worker=0:truncate-frame:after-frames=1", false},
      {"worker=*:delay-io-ms=10:after-frames=0:gens=all", true},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.plan);
    ShardCoordinator coordinator(chaos_config(2, c.plan));
    const BatchReport report = coordinator.run(items);
    ASSERT_EQ(report.items.size(), items.size());
    EXPECT_TRUE(report.all_ok()) << "no fault may lose or fail an item";
    EXPECT_FALSE(report.degraded);
    EXPECT_TRUE(report.quarantined_items.empty());
    if (c.survivable) {
      EXPECT_EQ(report.worker_failures + report.worker_timeouts, 0u);
    } else {
      EXPECT_EQ(report.worker_failures + report.worker_timeouts, 1u);
    }
    EXPECT_EQ(items_json(report), expected);
  }
}

TEST(ChaosCoordinator, RepeatCrashersAreQuarantined) {
  // One worker slot, crashing before its first RESULT on EVERY
  // generation: the whole assignment is implicated twice and must be
  // quarantined (reported, not retried forever), with no degradation —
  // the quarantine resolved the work.
  const std::vector<BatchItem> items = small_batch();
  CoordinatorConfig config =
      chaos_config(1, "worker=0:crash:after-frames=1:gens=all");
  config.retries = 3;
  config.quarantine_crashes = 2;
  ShardCoordinator coordinator(std::move(config));
  const BatchReport report = coordinator.run(items);

  EXPECT_FALSE(report.all_ok());
  EXPECT_FALSE(report.degraded);
  ASSERT_EQ(report.quarantined_items.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(report.quarantined_items[i], i);  // sorted ascending
    EXPECT_FALSE(report.items[i].built);
    EXPECT_NE(report.items[i].error.find("quarantined"), std::string::npos);
  }
  EXPECT_EQ(report.worker_failures, 2u)
      << "quarantine at the second death, not after the full retry budget";
}

TEST(ChaosCoordinator, ExhaustedFleetDegradesToSerial) {
  // Every spawn of every slot dies before HELLO, every retry included:
  // the coordinator must finish the whole batch in-process and say so,
  // not throw away the sweep.
  const std::vector<BatchItem> items = small_batch();
  set_parallel_threads(1);
  PlanService service;
  const BatchReport serial = service.run(items);
  set_parallel_threads(0);

  CoordinatorConfig config =
      chaos_config(2, "worker=*:crash:after-frames=0:gens=all");
  config.retries = 1;
  config.quarantine_crashes = 100;  // isolate degradation from quarantine
  ShardCoordinator coordinator(std::move(config));
  const BatchReport report = coordinator.run(items);

  ASSERT_TRUE(report.degraded);
  ASSERT_TRUE(report.all_ok()) << "every item completes in-process";
  EXPECT_TRUE(report.quarantined_items.empty());
  // Two slots, each spawning 1 + retries times, every spawn a crash.
  EXPECT_EQ(report.worker_failures, 4u);
  for (const auto& stats : coordinator.worker_stats()) {
    EXPECT_TRUE(stats.failed);
    EXPECT_EQ(stats.respawns, 1u);
    EXPECT_EQ(stats.shards_completed, 0u);
  }
  EXPECT_EQ(items_json(report), items_json(serial));
}

TEST(ChaosCoordinator, MalformedFaultPlanThrowsBeforeSpawning) {
  CoordinatorConfig config = chaos_config(2, "worker=0:explode");
  ShardCoordinator coordinator(std::move(config));
  EXPECT_THROW(coordinator.run(small_batch()), std::invalid_argument);
  EXPECT_TRUE(coordinator.worker_stats().empty());
}

}  // namespace
}  // namespace latticesched
