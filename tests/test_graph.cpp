#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace latticesched {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(0);
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(g.greedy_clique().empty());
}

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, DuplicatesAndSelfLoopsIgnored) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto& nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(Graph, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(Graph, GreedyCliqueFindsTriangle) {
  Graph g(5);
  // Triangle 0-1-2 plus pendant edges.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto clique = g.greedy_clique();
  EXPECT_EQ(clique.size(), 3u);
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      EXPECT_TRUE(g.has_edge(clique[i], clique[j]));
    }
  }
}

TEST(Graph, GreedyCliqueOnCompleteGraph) {
  Graph g(6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    for (std::uint32_t j = i + 1; j < 6; ++j) {
      g.add_edge(i, j);
    }
  }
  EXPECT_EQ(g.greedy_clique().size(), 6u);
}

}  // namespace
}  // namespace latticesched
