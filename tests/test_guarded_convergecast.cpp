// Guard-slot schedules (skew robustness) and the convergecast simulator.
#include <gtest/gtest.h>

#include "baseline/tdma.hpp"
#include "core/collision.hpp"
#include "core/guarded.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/convergecast.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace {

struct World {
  Prototile tile = shapes::chebyshev_ball(2, 1);
  Deployment deployment = Deployment::grid(Box::cube(2, 0, 7), tile);
  TilingSchedule schedule = TilingSchedule(*decide_exactness(tile).tiling);
};

TEST(Guarded, SlotStretching) {
  SensorSlots base;
  base.period = 3;
  base.slot = {0, 1, 2};
  base.source = "test";
  const SensorSlots g = guarded_slots(base, 3);
  EXPECT_EQ(g.period, 9u);
  EXPECT_EQ(g.slot, (std::vector<std::uint32_t>{0, 3, 6}));
  EXPECT_NE(g.source.find("guard3"), std::string::npos);
  EXPECT_THROW(guarded_slots(base, 0), std::invalid_argument);
}

TEST(Guarded, ToleranceFormula) {
  EXPECT_EQ(guard_tolerance(1), 0);
  EXPECT_EQ(guard_tolerance(2), 0);
  EXPECT_EQ(guard_tolerance(3), 1);
  EXPECT_EQ(guard_tolerance(5), 2);
}

TEST(Guarded, StillCollisionFreeWithoutDrift) {
  World w;
  const SensorSlots g =
      guarded_slots(assign_slots(w.schedule, w.deployment), 3);
  EXPECT_TRUE(check_collision_free(w.deployment, g).collision_free);
}

TEST(Guarded, AbsorbsBoundedDriftThatBreaksThePlainSchedule) {
  World w;
  const SensorSlots plain = assign_slots(w.schedule, w.deployment);
  // Random ±1 offsets on a quarter of the nodes.
  Rng rng(5);
  std::vector<std::int64_t> offsets(w.deployment.size(), 0);
  for (auto& o : offsets) {
    if (rng.next_bool(0.25)) o = rng.next_bool(0.5) ? 1 : -1;
  }
  SimConfig cfg;
  cfg.slots = 2700;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);

  SlotScheduleMac drifted_plain(plain, offsets);
  const SimResult r_plain = sim.run(drifted_plain);
  EXPECT_GT(r_plain.failed_tx, 0u) << "plain schedule must break";

  // Guard factor 3 tolerates |offset| <= 1 by construction.
  SlotScheduleMac drifted_guarded(guarded_slots(plain, 3), offsets);
  const SimResult r_guarded = sim.run(drifted_guarded);
  EXPECT_EQ(r_guarded.failed_tx, 0u) << "guarded schedule must absorb ±1";
  // And it pays the 3x throughput price.
  EXPECT_NEAR(r_guarded.per_sensor_throughput(),
              r_plain.successful_tx > 0 ? 1.0 / 27.0 : 1.0 / 27.0, 0.004);
}

TEST(Guarded, GuardFactorTwoFailsOppositeDrift) {
  // ±1 offsets exceed guard_tolerance(2) = 0: two opposite-drifted
  // adjacent-slot nodes can still meet.  Construct the worst case
  // explicitly: conflicting sensors with slots k and k+1, offsets +1/-1.
  World w;
  const SensorSlots plain = assign_slots(w.schedule, w.deployment);
  std::vector<std::int64_t> offsets(w.deployment.size(), 0);
  // Find two conflicting sensors with adjacent slots.
  const Graph g = build_conflict_graph(w.deployment);
  bool planted = false;
  for (std::uint32_t u = 0; u < g.size() && !planted; ++u) {
    for (std::uint32_t v : g.neighbors(u)) {
      if (plain.slot[v] == plain.slot[u] + 1) {
        offsets[u] = -1;  // u drifts late into...
        offsets[v] = 1;   // ...v drifting early: both land between slots
        planted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(planted);
  SimConfig cfg;
  cfg.slots = 2000;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(guarded_slots(plain, 2), offsets);
  const SimResult r = sim.run(mac);
  EXPECT_GT(r.failed_tx, 0u);
}

TEST(Convergecast, RoutesAreGreedyAndLoopFree) {
  World w;
  const Point sink{0, 0};
  ConvergecastSimulator sim(w.deployment, sink);
  EXPECT_EQ(w.deployment.position(sim.sink_id()), sink);
  for (std::uint32_t i = 0; i < w.deployment.size(); ++i) {
    const std::uint32_t hop = sim.next_hop()[i];
    if (i == sim.sink_id()) {
      EXPECT_EQ(hop, i);
      continue;
    }
    // Strict progress toward the sink.
    EXPECT_LT((w.deployment.position(hop) - sink).norm2_sq(),
              (w.deployment.position(i) - sink).norm2_sq());
    // Route length is finite and bounded by the grid diameter.
    EXPECT_LE(sim.route_length(i), 16u);
  }
}

TEST(Convergecast, SinkMustBeDeployed) {
  World w;
  EXPECT_THROW(ConvergecastSimulator(w.deployment, Point{100, 100}),
               std::invalid_argument);
}

TEST(Convergecast, TilingScheduleDeliversWithoutCollisions) {
  World w;
  ConvergecastSimulator sim(w.deployment, Point{0, 0});
  ConvergecastConfig cfg;
  cfg.slots = 30'000;
  cfg.arrival_rate = 0.001;
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const ConvergecastResult r = sim.run(mac, cfg);
  EXPECT_EQ(r.failed_tx, 0u) << "slot schedule never collides";
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.delivery_ratio(), 0.9);
  // Hops of delivered frames are plausible (≥1, ≤ diameter).
  EXPECT_GE(r.hops.min(), 1.0);
  EXPECT_LE(r.hops.max(), 16.0);
}

TEST(Convergecast, CsmaCollidesAndDeliversLess) {
  World w;
  ConvergecastSimulator sim(w.deployment, Point{0, 0});
  ConvergecastConfig cfg;
  cfg.slots = 30'000;
  cfg.arrival_rate = 0.001;
  cfg.seed = 3;
  SlotScheduleMac tiling_mac(assign_slots(w.schedule, w.deployment));
  AlohaMac aloha(0.2);
  const ConvergecastResult r_tiling = sim.run(tiling_mac, cfg);
  const ConvergecastResult r_aloha = sim.run(aloha, cfg);
  EXPECT_GT(r_aloha.failed_tx, 0u);
  EXPECT_LT(r_aloha.delivery_ratio(), r_tiling.delivery_ratio());
}

TEST(Convergecast, AccountingConsistent) {
  World w;
  ConvergecastSimulator sim(w.deployment, Point{3, 3});
  ConvergecastConfig cfg;
  cfg.slots = 5000;
  cfg.arrival_rate = 0.005;
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const ConvergecastResult r = sim.run(mac, cfg);
  EXPECT_EQ(r.attempted_tx, r.successful_tx + r.failed_tx);
  EXPECT_EQ(r.delivered, r.end_to_end_latency.count());
  EXPECT_EQ(r.delivered, r.hops.count());
  EXPECT_LE(r.delivered + r.source_drops + r.relay_drops, r.arrivals);
}

}  // namespace
}  // namespace latticesched
