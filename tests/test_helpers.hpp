// Shared helpers for the test suite.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "lattice/point.hpp"
#include "tiling/prototile.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace test_helpers {

/// Scratch directory, created by mkdtemp and removed (recursively) at
/// scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/latticesched_test_XXXXXX";
    if (char* made = ::mkdtemp(tmpl); made != nullptr) path = made;
  }
  ~TempDir() {
    if (!path.empty()) std::filesystem::remove_all(path);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

/// Grows a random polyomino of `cells` cells by repeatedly attaching a
/// uniformly random empty 4-neighbor; the result is connected and
/// re-anchored to contain the origin.
inline Prototile random_polyomino(Rng& rng, std::size_t cells) {
  PointSet set;
  PointVec frontier;
  set.insert(Point{0, 0});
  frontier.push_back(Point{0, 0});
  const Point dirs[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  while (set.size() < cells) {
    const Point& base =
        frontier[static_cast<std::size_t>(rng.next_below(frontier.size()))];
    const Point cand = base + dirs[rng.next_below(4)];
    if (set.insert(cand).second) frontier.push_back(cand);
  }
  PointVec pts(set.begin(), set.end());
  // Anchor at the lexicographically smallest cell so 0 is a member.
  const Point origin = sorted_unique(pts).front();
  for (Point& p : pts) p -= origin;
  return Prototile(std::move(pts), "random");
}

}  // namespace test_helpers
}  // namespace latticesched
