// End-to-end integration tests: the full pipelines a user of the library
// would run, from prototile to verified collision-free schedule to
// simulation.
#include <gtest/gtest.h>

#include "baseline/tdma.hpp"
#include "core/collision.hpp"
#include "core/optimality.hpp"
#include "core/restriction.hpp"
#include "core/serialization.hpp"
#include "core/tiling_scheduler.hpp"
#include "sim/simulator.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {
namespace {

TEST(Integration, PaperPipelineTheorem1) {
  // 1. Pick a neighborhood (Figure 2 left).
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  // 2. Decide exactness and obtain a tiling (Section 3).
  const ExactnessResult ex = decide_exactness(ball);
  ASSERT_TRUE(ex.exact);
  ASSERT_TRUE(ex.tiling.has_value());
  // 3. Build the Theorem-1 schedule.
  const TilingSchedule schedule(*ex.tiling);
  EXPECT_EQ(schedule.period(), 9u);
  EXPECT_TRUE(schedule.optimal());
  // 4. Deploy on a window above the restriction threshold.
  const Box window = Box::cube(2, 0, 8);
  ASSERT_TRUE(analyze_restriction(window, ball).optimality_guaranteed);
  const Deployment d = Deployment::grid(window, ball);
  // 5. Verify collision-freedom (the paper's predicate).
  EXPECT_TRUE(check_collision_free(d, schedule).collision_free);
  // 6. Verify optimality against the exact chromatic number.
  const DeploymentOptimum opt = optimal_slots_for_deployment(d);
  EXPECT_TRUE(opt.proven);
  EXPECT_EQ(opt.optimal_slots, schedule.period());
  // 7. Simulate and confirm zero collisions under load.
  SimConfig cfg;
  cfg.slots = 900;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(assign_slots(schedule, d));
  EXPECT_EQ(sim.run(mac).failed_tx, 0u);
}

TEST(Integration, PaperPipelineTheorem2) {
  // Respectable two-prototile tiling: 3x3 ball containing a 1x3 bar.
  // Tile a 3x6 torus: one 3x3 ball block + three 1x3 bars... simpler:
  // ball at rows 0-2, three horizontal bars stacked in rows 3-5.
  std::vector<Prototile> protos = {
      shapes::chebyshev_ball(2, 1),                      // 9 cells
      shapes::rectangle(3, 1, 1, 0)};                    // bar {(-1..1, 0)}
  ASSERT_TRUE(protos[0].contains_tile(protos[1]));
  const Tiling tiling = Tiling::periodic(
      protos, Sublattice::diagonal({3, 6}),
      {{Point{1, 1}, 0},   // ball centered so it covers rows 0..2
       {Point{1, 3}, 1},
       {Point{1, 4}, 1},
       {Point{1, 5}, 1}});
  ASSERT_TRUE(tiling.is_respectable());
  const TilingSchedule schedule{Tiling(tiling)};
  EXPECT_EQ(schedule.period(), 9u);  // |N1 ∪ N2| = |N1| = 9
  EXPECT_TRUE(schedule.optimal());
  // Deployment rule D1 and the collision check.
  const Deployment d = Deployment::from_tiling(tiling, Box::centered(2, 9));
  EXPECT_TRUE(check_collision_free(d, schedule).collision_free);
  // The tiling-constrained optimum matches Theorem 2.
  const TilingOptimum opt = optimal_slots_for_tiling(tiling);
  EXPECT_TRUE(opt.proven);
  EXPECT_EQ(opt.optimal_slots, 9u);
  EXPECT_EQ(opt.theorem2_slots, 9u);
}

TEST(Integration, Figure5NonRespectablePhenomenon) {
  // Mixed S/Z tilings on the 4x4 torus: the Theorem-2 algorithm spends
  // |S ∪ Z| = 6 slots; the per-tiling optimum ranges from 4 (symmetric)
  // to 6 (the paper's example) — so the optimum depends on the tiling.
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tilings = all_tilings_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), 1000, cfg);
  ASSERT_FALSE(tilings.empty());
  bool found_six = false, found_four = false;
  for (const Tiling& t : tilings) {
    ASSERT_FALSE(t.is_respectable());
    const TilingOptimum opt = optimal_slots_for_tiling(t);
    if (opt.optimal_slots == 6) found_six = true;
    if (opt.optimal_slots == 4) found_four = true;
    // Every mixed tiling still yields a valid 6-slot Theorem-2 schedule.
    const TilingSchedule sched{Tiling(t)};
    EXPECT_EQ(sched.period(), 6u);
    const Deployment d = Deployment::from_tiling(t, Box::centered(2, 6));
    EXPECT_TRUE(check_collision_free(d, sched).collision_free);
  }
  EXPECT_TRUE(found_six);
  EXPECT_TRUE(found_four);
}

TEST(Integration, ScheduleSurvivesSerializationIntoSimulation) {
  const Prototile ant = shapes::directional_antenna();
  const ExactnessResult ex = decide_exactness(ant);
  ASSERT_TRUE(ex.exact);
  const TilingSchedule schedule(*ex.tiling);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 7), ant);
  // Serialize, parse back, and run the parsed slots in the simulator.
  const std::string csv = schedule_to_csv(d, assign_slots(schedule, d));
  const ParsedSchedule parsed = parse_schedule_csv(csv);
  SimConfig cfg;
  cfg.slots = 800;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(parsed.slots);
  EXPECT_EQ(sim.run(mac).failed_tx, 0u);
}

TEST(Integration, HexagonalLatticePipeline) {
  // The combinatorial machinery is lattice-agnostic: schedule the
  // 7-point hex Euclidean ball (center + 6 neighbors) on Z² coordinates.
  const Prototile hex_ball = shapes::euclidean_ball(Lattice::hexagonal(), 1.0);
  ASSERT_EQ(hex_ball.size(), 7u);
  const ExactnessResult ex = decide_exactness(hex_ball);
  ASSERT_TRUE(ex.exact);  // hex balls tile (perfect hexagonal codes)
  const TilingSchedule schedule(*ex.tiling);
  EXPECT_EQ(schedule.period(), 7u);
  const Deployment d = Deployment::grid(Box::centered(2, 6), hex_ball);
  EXPECT_TRUE(check_collision_free(d, schedule).collision_free);
}

}  // namespace
}  // namespace latticesched
