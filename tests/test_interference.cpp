// Deployments, conflict graphs, and the affects digraph — including the
// equivalence between the paper's set-intersection collision predicate and
// the distance-2 formulation of the related work.
#include "graph/interference.hpp"

#include <gtest/gtest.h>

#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(Deployment, UniformAndGrid) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 2),
                                        shapes::l1_ball(2, 1));
  EXPECT_EQ(d.size(), 9u);
  EXPECT_EQ(d.prototiles().size(), 1u);
  EXPECT_EQ(d.type_of(0), 0u);
  EXPECT_EQ(d.coverage_of(0).size(), 5u);
  EXPECT_TRUE(d.sensor_at(Point{1, 1}).has_value());
  EXPECT_FALSE(d.sensor_at(Point{5, 5}).has_value());
}

TEST(Deployment, DuplicatePositionsRejected) {
  EXPECT_THROW(
      Deployment::uniform({Point{0, 0}, Point{0, 0}}, shapes::l1_ball(2, 1)),
      std::invalid_argument);
}

TEST(Deployment, FromTilingFollowsD1) {
  // Deployment rule D1: each sensor inherits the prototile of its tile.
  std::vector<Prototile> protos = {
      Prototile::from_ascii({"X", "O"}, "v-domino"),
      Prototile({Point{0, 0}}, "dot")};
  const Tiling t =
      Tiling::periodic(protos, Sublattice::diagonal({2, 2}),
                       {{Point{0, 0}, 0}, {Point{1, 0}, 1}, {Point{1, 1}, 1}});
  const Deployment d = Deployment::from_tiling(t, Box::cube(2, 0, 3));
  EXPECT_EQ(d.size(), 16u);
  const auto id_dot = d.sensor_at(Point{1, 0});
  const auto id_dom = d.sensor_at(Point{0, 1});
  ASSERT_TRUE(id_dot.has_value());
  ASSERT_TRUE(id_dom.has_value());
  EXPECT_EQ(d.type_of(*id_dot), 1u);
  EXPECT_EQ(d.type_of(*id_dom), 0u);
}

TEST(ConflictGraph, MatchesBruteForcePredicate) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 3),
                                        shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (std::uint32_t j = i + 1; j < d.size(); ++j) {
      EXPECT_EQ(g.has_edge(i, j), sensors_conflict(d, i, j))
          << "sensors " << i << ", " << j;
    }
  }
}

TEST(ConflictGraph, IsolatedSensorsHaveNoEdges) {
  // Two sensors far apart with radius-1 neighborhoods.
  const Deployment d = Deployment::uniform({Point{0, 0}, Point{100, 100}},
                                           shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(ConflictGraph, AdjacentChebyshevSensorsConflict) {
  // Chebyshev r=1 neighborhoods intersect up to distance 2 per axis.
  const Deployment d = Deployment::uniform(
      {Point{0, 0}, Point{2, 0}, Point{3, 0}, Point{5, 5}},
      shapes::chebyshev_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  EXPECT_TRUE(g.has_edge(0, 1));   // ranges touch at x=1
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));  // distance 3: disjoint
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(AffectsDigraph, MatchesCoverage) {
  const Deployment d = Deployment::grid(Box::cube(2, 0, 2),
                                        shapes::quadrant_sector(1));
  const auto affects = build_affects_digraph(d);
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    for (std::uint32_t j : affects[i]) {
      EXPECT_NE(i, j);
      // j's position must be inside i's coverage.
      const PointVec cov = d.coverage_of(i);
      EXPECT_NE(std::find(cov.begin(), cov.end(), d.position(j)), cov.end());
    }
  }
}

TEST(AffectsDigraph, AsymmetricForDirectionalAntennas) {
  // Sensor at origin radiates into the quadrant; the sensor at (1,1) is
  // affected, but with the same antenna it does NOT affect the origin.
  const Deployment d = Deployment::uniform({Point{0, 0}, Point{1, 1}},
                                           shapes::quadrant_sector(1));
  const auto affects = build_affects_digraph(d);
  ASSERT_EQ(affects[0].size(), 1u);
  EXPECT_EQ(affects[0][0], 1u);
  EXPECT_TRUE(affects[1].empty());
  // They still conflict (coverages intersect at (1,1) among others).
  EXPECT_TRUE(sensors_conflict(d, 0, 1));
}

TEST(ConflictEqualsCommonOutNeighborOnDenseGrids, SymmetricNeighborhoods) {
  // With sensors at EVERY lattice point of a window and symmetric
  // neighborhoods, (i,j) conflict iff some sensor position is covered by
  // both (the witness point always hosts a sensor in the window interior)
  // — i.e. distance <= 2 via a common out-neighbor in the affects graph.
  const Box box = Box::cube(2, 0, 5);
  const Deployment d = Deployment::grid(box, shapes::l1_ball(2, 1));
  const Graph g = build_conflict_graph(d);
  const auto affects = build_affects_digraph(d);
  // Interior sensors only (so coverage stays inside the deployed window).
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    if (!Box::cube(2, 1, 4).contains(d.position(i))) continue;
    for (std::uint32_t j = 0; j < d.size(); ++j) {
      if (j <= i || !Box::cube(2, 1, 4).contains(d.position(j))) continue;
      bool common_out = false;
      // i -> w and j -> w for some w (w may equal i or j: a direct edge
      // also witnesses intersection since neighborhoods contain 0).
      const PointVec cov_vec = d.coverage_of(i);
      PointSet cov_i(cov_vec.begin(), cov_vec.end());
      for (const Point& w : d.coverage_of(j)) {
        if (cov_i.count(w) != 0) {
          common_out = true;
          break;
        }
      }
      EXPECT_EQ(g.has_edge(i, j), common_out);
    }
  }
}

TEST(Deployment, MultiPrototileConflicts) {
  // A big and a small neighborhood: conflict reach is asymmetric in size.
  std::vector<Prototile> protos;
  const Deployment d = [] {
    // Manually build via uniform + from_tiling is awkward; use a tiling.
    std::vector<Prototile> ps = {shapes::chebyshev_ball(2, 1),
                                 Prototile({Point{0, 0}})};
    // Tile a 3x3-with-hole pattern: ball at center covers 9 cells of a
    // 3x3 torus... ball tiles 3x3 torus alone; instead place ball + dots
    // on a 2x5 torus? Simplest: dots only around a ball on a 10-cell
    // torus is fiddly — use rule-free uniform deployments instead.
    return Deployment::uniform({Point{0, 0}, Point{3, 0}},
                               shapes::chebyshev_ball(2, 1));
  }();
  EXPECT_FALSE(sensors_conflict(d, 0, 1));
}

}  // namespace
}  // namespace latticesched
