#include "lattice/intmat.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace latticesched {
namespace {

TEST(FloorDiv, RoundsTowardMinusInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_THROW(floor_div(1, 0), std::invalid_argument);
}

TEST(ExtGcd, BezoutIdentityHolds) {
  for (std::int64_t a : {0LL, 1LL, -4LL, 12LL, 35LL, -35LL, 1071LL}) {
    for (std::int64_t b : {0LL, 1LL, 3LL, -3LL, 462LL, 25LL}) {
      if (a == 0 && b == 0) continue;
      std::int64_t x, y;
      const std::int64_t g = ext_gcd(a, b, x, y);
      EXPECT_GT(g, 0);
      EXPECT_EQ(a % g, 0);
      EXPECT_EQ(b % g, 0);
      EXPECT_EQ(a * x + b * y, g) << "a=" << a << " b=" << b;
    }
  }
}

TEST(IntMatrix, ConstructionAndAccess) {
  IntMatrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(1, 0), 3);
  m.at(1, 0) = 7;
  EXPECT_EQ(m.at(1, 0), 7);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW((IntMatrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(IntMatrix, IdentityAndDiagonal) {
  const IntMatrix i3 = IntMatrix::identity(3);
  EXPECT_EQ(i3.det(), 1);
  const IntMatrix d = IntMatrix::diagonal({2, 3, 5});
  EXPECT_EQ(d.det(), 30);
}

TEST(IntMatrix, MatrixVectorProduct) {
  const IntMatrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.mul(Point{1, 1}), (Point{3, 7}));
  EXPECT_THROW(m.mul(Point{1, 1, 1}), std::invalid_argument);
}

TEST(IntMatrix, MatrixProductAndTranspose) {
  const IntMatrix a{{1, 2}, {3, 4}};
  const IntMatrix b{{0, 1}, {1, 0}};
  EXPECT_EQ(a.mul(b), (IntMatrix{{2, 1}, {4, 3}}));
  EXPECT_EQ(a.transpose(), (IntMatrix{{1, 3}, {2, 4}}));
}

TEST(IntMatrix, FromColumns) {
  const IntMatrix m = IntMatrix::from_columns({Point{1, 2}, Point{3, 4}});
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(1, 0), 2);
  EXPECT_EQ(m.at(0, 1), 3);
  EXPECT_EQ(m.column(1), (Point{3, 4}));
}

TEST(IntMatrix, DeterminantKnownValues) {
  EXPECT_EQ((IntMatrix{{2, 0}, {0, 3}}).det(), 6);
  EXPECT_EQ((IntMatrix{{1, 2}, {3, 4}}).det(), -2);
  EXPECT_EQ((IntMatrix{{0, 1}, {1, 0}}).det(), -1);
  EXPECT_EQ((IntMatrix{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}).det(), 0);
  EXPECT_EQ((IntMatrix{{2, -3, 1}, {2, 0, -1}, {1, 4, 5}}).det(), 49);
  // Pivot-swap path: leading zero.
  EXPECT_EQ((IntMatrix{{0, 2}, {3, 0}}).det(), -6);
}

// Cofactor expansion reference for random matrices (3x3).
std::int64_t det3_reference(const IntMatrix& m) {
  auto a = [&](std::size_t r, std::size_t c) { return m.at(r, c); };
  return a(0, 0) * (a(1, 1) * a(2, 2) - a(1, 2) * a(2, 1)) -
         a(0, 1) * (a(1, 0) * a(2, 2) - a(1, 2) * a(2, 0)) +
         a(0, 2) * (a(1, 0) * a(2, 1) - a(1, 1) * a(2, 0));
}

TEST(IntMatrix, DeterminantMatchesCofactorOnRandom3x3) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    IntMatrix m(3, 3);
    for (std::size_t r = 0; r < 3; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        m.at(r, c) = rng.next_int(-9, 9);
      }
    }
    EXPECT_EQ(m.det(), det3_reference(m));
  }
}

TEST(IntMatrix, ColumnHnfCanonicalShape) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    IntMatrix m(2, 2);
    do {
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
          m.at(r, c) = rng.next_int(-8, 8);
        }
      }
    } while (m.det() == 0);
    const IntMatrix h = m.column_hnf();
    // Lower triangular, positive diagonal, reduced entries.
    EXPECT_EQ(h.at(0, 1), 0);
    EXPECT_GT(h.at(0, 0), 0);
    EXPECT_GT(h.at(1, 1), 0);
    EXPECT_GE(h.at(1, 0), 0);
    EXPECT_LT(h.at(1, 0), h.at(1, 1));
    // |det| preserved (column ops are unimodular).
    EXPECT_EQ(h.at(0, 0) * h.at(1, 1), std::abs(m.det()));
  }
}

TEST(IntMatrix, ColumnHnfSingularThrows) {
  const IntMatrix m{{1, 2}, {2, 4}};
  EXPECT_THROW(m.column_hnf(), std::domain_error);
}

TEST(IntMatrix, HnfIsIdempotentOnCanonicalForms) {
  const IntMatrix h{{3, 0}, {2, 5}};
  EXPECT_EQ(h.column_hnf(), h);
}

TEST(EnumerateHnf, CountsMatchDivisorSigmaIn2D) {
  // The number of index-m sublattices of Z² is sigma(m) = sum of divisors.
  auto sigma = [](std::int64_t m) {
    std::int64_t s = 0;
    for (std::int64_t d = 1; d <= m; ++d) {
      if (m % d == 0) s += d;
    }
    return s;
  };
  for (std::int64_t m : {1, 2, 3, 4, 5, 6, 8, 9, 12}) {
    const auto hnfs = enumerate_hnf_with_det(2, m);
    EXPECT_EQ(static_cast<std::int64_t>(hnfs.size()), sigma(m)) << "m=" << m;
    for (const auto& h : hnfs) {
      EXPECT_EQ(h.det(), m);
      EXPECT_EQ(h.column_hnf(), h) << "enumerated form must be canonical";
    }
  }
}

TEST(EnumerateHnf, AllDistinct) {
  const auto hnfs = enumerate_hnf_with_det(2, 6);
  for (std::size_t i = 0; i < hnfs.size(); ++i) {
    for (std::size_t j = i + 1; j < hnfs.size(); ++j) {
      EXPECT_NE(hnfs[i], hnfs[j]);
    }
  }
}

TEST(EnumerateHnf, ThreeDimensionalCount) {
  // Sublattices of Z³ of index 2: sigma_2-like count is 7 (known value:
  // number of subgroups of Z³ of index 2 equals number of index-2
  // subgroups of (Z/2)³ = number of hyperplanes = 7).
  EXPECT_EQ(enumerate_hnf_with_det(3, 2).size(), 7u);
  EXPECT_THROW(enumerate_hnf_with_det(0, 2), std::invalid_argument);
  EXPECT_THROW(enumerate_hnf_with_det(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
