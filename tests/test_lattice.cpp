#include "lattice/lattice.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace latticesched {
namespace {

TEST(Lattice, SquareBasics) {
  const Lattice sq = Lattice::square();
  EXPECT_EQ(sq.dim(), 2u);
  EXPECT_EQ(sq.name(), "square");
  const RealVec e = sq.embed(Point{3, -2});
  EXPECT_DOUBLE_EQ(e[0], 3.0);
  EXPECT_DOUBLE_EQ(e[1], -2.0);
  EXPECT_EQ(sq.norm_sq_scaled(Point{3, 4}), 25);
  EXPECT_EQ(sq.gram_scale(), 1);
  EXPECT_DOUBLE_EQ(sq.covolume(), 1.0);
  EXPECT_DOUBLE_EQ(sq.minimum_sq(), 1.0);
}

TEST(Lattice, HexagonalGeometry) {
  const Lattice hex = Lattice::hexagonal();
  // |u2| = 1: the hexagonal lattice is unimodular in edge length.
  EXPECT_DOUBLE_EQ(hex.norm_sq(Point{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(hex.norm_sq(Point{1, 0}), 1.0);
  // |u1 - u2|² = 1 as well (the six minimal vectors of the hex lattice).
  EXPECT_DOUBLE_EQ(hex.norm_sq(Point{1, -1}), 1.0);
  // |u1 + u2|² = 3.
  EXPECT_DOUBLE_EQ(hex.norm_sq(Point{1, 1}), 3.0);
  // Covolume = √3/2 ≈ 0.866.
  EXPECT_NEAR(hex.covolume(), std::sqrt(3.0) / 2.0, 1e-12);
  // Exact scaled norm: |a·u1 + b·u2|² = (2a² + 2ab + 2b²)/2.
  EXPECT_EQ(hex.norm_sq_scaled(Point{2, 3}), 2 * 4 + 2 * 6 + 2 * 9);
  EXPECT_EQ(hex.gram_scale(), 2);
}

TEST(Lattice, HexEmbedMatchesGram) {
  const Lattice hex = Lattice::hexagonal();
  for (std::int64_t a = -3; a <= 3; ++a) {
    for (std::int64_t b = -3; b <= 3; ++b) {
      const RealVec e = hex.embed(Point{a, b});
      const double direct = e[0] * e[0] + e[1] * e[1];
      EXPECT_NEAR(direct, hex.norm_sq(Point{a, b}), 1e-9);
    }
  }
}

TEST(Lattice, CubicThreeDimensional) {
  const Lattice c = Lattice::cubic(3);
  EXPECT_EQ(c.dim(), 3u);
  EXPECT_DOUBLE_EQ(c.covolume(), 1.0);
  EXPECT_EQ(c.norm_sq_scaled(Point{1, 2, 2}), 9);
}

TEST(Lattice, VectorsWithinSquare) {
  const Lattice sq = Lattice::square();
  // Radius 1: the four unit vectors.
  EXPECT_EQ(sq.vectors_within(1.0, 2).size(), 4u);
  // Radius √2: adds the four diagonals.
  EXPECT_EQ(sq.vectors_within(std::sqrt(2.0), 2).size(), 8u);
  // Radius 2: adds (±2,0),(0,±2).
  EXPECT_EQ(sq.vectors_within(2.0, 3).size(), 12u);
}

TEST(Lattice, VectorsWithinHex) {
  const Lattice hex = Lattice::hexagonal();
  // Kissing number of the hexagonal lattice is 6.
  EXPECT_EQ(hex.vectors_within(1.0, 2).size(), 6u);
}

TEST(Lattice, MinimumSqHex) {
  EXPECT_NEAR(Lattice::hexagonal().minimum_sq(), 1.0, 1e-12);
}

TEST(Lattice, NearestPointSquare) {
  const Lattice sq = Lattice::square();
  EXPECT_EQ(sq.nearest_point({0.2, 0.8}), (Point{0, 1}));
  EXPECT_EQ(sq.nearest_point({-1.4, 2.6}), (Point{-1, 3}));
  EXPECT_EQ(sq.nearest_point({3.0, -2.0}), (Point{3, -2}));
}

TEST(Lattice, NearestPointHexIsActuallyNearest) {
  const Lattice hex = Lattice::hexagonal();
  // Brute force comparison over a small window of candidates.
  auto brute = [&](double x, double y) {
    Point best{0, 0};
    double best_d = 1e18;
    for (std::int64_t a = -6; a <= 6; ++a) {
      for (std::int64_t b = -6; b <= 6; ++b) {
        const RealVec e = hex.embed(Point{a, b});
        const double d =
            (e[0] - x) * (e[0] - x) + (e[1] - y) * (e[1] - y);
        if (d < best_d - 1e-12) {
          best_d = d;
          best = Point{a, b};
        }
      }
    }
    return best_d;
  };
  for (double x = -2.0; x <= 2.0; x += 0.37) {
    for (double y = -2.0; y <= 2.0; y += 0.41) {
      const Point p = hex.nearest_point({x, y});
      const RealVec e = hex.embed(p);
      const double d = (e[0] - x) * (e[0] - x) + (e[1] - y) * (e[1] - y);
      EXPECT_NEAR(d, brute(x, y), 1e-9) << "at (" << x << ", " << y << ")";
    }
  }
}

TEST(Lattice, CustomLatticeValidation) {
  EXPECT_THROW(Lattice::custom("bad", {{1.0, 0.0}, {2.0, 0.0}},
                               IntMatrix::identity(2), 1),
               std::domain_error);  // singular basis
  EXPECT_THROW(Lattice::custom("bad", {{1.0, 0.0}, {0.0, 1.0}},
                               IntMatrix::identity(2), 0),
               std::invalid_argument);  // zero scale
}

TEST(Lattice, EmbedDimensionMismatch) {
  EXPECT_THROW(Lattice::square().embed(Point{1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
