// Footprint-mask kernel tests: the scalar reference contract and the
// AVX2 cross-check.  The dispatch tables must be bit-identical — the
// dense torus engine treats kernel choice as invisible (pinned again at
// the search level by test_stealing_determinism.cpp) — so the AVX2
// implementation is compared against scalar on randomized masks,
// including word counts that leave a tail after the 4-word SIMD lanes
// and set tail bits mimicking cells % 64 != 0 tori.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "tiling/mask_kernels.hpp"

namespace latticesched {
namespace mask_kernels {
namespace {

/// Restores the process-wide kernel override on scope exit.
struct KernelGuard {
  ~KernelGuard() { set_kernel(Kernel::kAuto); }
};

TEST(MaskKernels, ScalarFirstUncoveredContract) {
  // One word, bit 3 clear.
  std::uint64_t one = ~std::uint64_t{0} & ~(std::uint64_t{1} << 3);
  EXPECT_EQ(first_uncovered_scalar(&one, 1, 0), 3u);
  EXPECT_EQ(first_uncovered_scalar(&one, 1, 3), 3u);
  // Past the only hole: bounded, returns words * 64.
  EXPECT_EQ(first_uncovered_scalar(&one, 1, 4), 64u);

  // Hole in a later word, cursor mid-word.
  std::uint64_t multi[3] = {~std::uint64_t{0}, ~std::uint64_t{0},
                            ~(std::uint64_t{1} << 17)};
  EXPECT_EQ(first_uncovered_scalar(multi, 3, 0), 2u * 64 + 17);
  EXPECT_EQ(first_uncovered_scalar(multi, 3, 100), 2u * 64 + 17);
  multi[2] = ~std::uint64_t{0};
  EXPECT_EQ(first_uncovered_scalar(multi, 3, 0), 3u * 64);

  // The empty mask: cursor itself is uncovered.
  std::uint64_t zero = 0;
  EXPECT_EQ(first_uncovered_scalar(&zero, 1, 0), 0u);
  EXPECT_EQ(first_uncovered_scalar(&zero, 1, 41), 41u);
}

TEST(MaskKernels, ScalarOverlapAndToggle) {
  std::uint64_t cover[2] = {0x0f, 0};
  std::uint64_t mask[2] = {0xf0, 0};
  EXPECT_FALSE(any_overlap_scalar(cover, mask, 2));
  toggle_scalar(cover, mask, 2);
  EXPECT_EQ(cover[0], 0xffu);
  EXPECT_TRUE(any_overlap_scalar(cover, mask, 2));
  toggle_scalar(cover, mask, 2);  // undo: toggle is an involution
  EXPECT_EQ(cover[0], 0x0fu);
  EXPECT_EQ(cover[1], 0u);
}

TEST(MaskKernels, DispatchTablesAndOverride) {
  KernelGuard guard;
  EXPECT_STREQ(scalar_ops().name, "scalar");
  ASSERT_TRUE(set_kernel(Kernel::kScalar));
  EXPECT_EQ(kernel_setting(), Kernel::kScalar);
  EXPECT_STREQ(active_ops().name, "scalar");

  if (avx2_ops() != nullptr) {
    EXPECT_STREQ(avx2_ops()->name, "avx2");
    EXPECT_TRUE(set_kernel(Kernel::kAvx2));
    EXPECT_STREQ(active_ops().name, "avx2");
  } else {
    // Unavailable: the request is refused and the setting is unchanged.
    EXPECT_FALSE(set_kernel(Kernel::kAvx2));
    EXPECT_EQ(kernel_setting(), Kernel::kScalar);
    EXPECT_STREQ(active_ops().name, "scalar");
  }
}

// The cross-check: every op, every word count 1..11 (SIMD lane counts 0,
// 1, 2 with every tail length), randomized masks.  Biased bit densities
// hit both the all-ones fast path of the scan and sparse overlap cases.
TEST(MaskKernels, Avx2MatchesScalarOnRandomMasks) {
  const Ops* avx2 = avx2_ops();
  if (avx2 == nullptr) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this build/host";
  }
  std::mt19937_64 rng(0xC0FFEEu);
  for (std::uint32_t words = 1; words <= 11; ++words) {
    for (int round = 0; round < 200; ++round) {
      std::vector<std::uint64_t> cover(words), mask(words);
      // Density sweep: mostly-ones masks exercise the scan's
      // keep-looking path, mostly-zeros the immediate hit.
      const int density = round % 4;
      for (std::uint32_t i = 0; i < words; ++i) {
        std::uint64_t v = rng();
        if (density == 0) v |= rng();          // ~75% ones
        if (density == 1) v &= rng();          // ~25% ones
        if (density == 2) v = ~std::uint64_t{0};  // saturated words
        cover[i] = v;
        mask[i] = rng() & rng() & rng();       // sparse footprints
      }
      if (density == 2 && round % 8 == 2) {
        // Tail pattern of a torus with cells % 64 != 0: the last word
        // is saturated up to the cell count, zero past it.
        cover[words - 1] = ~std::uint64_t{0} << (round % 63 + 1) >>
                           (round % 63 + 1);
      }

      EXPECT_EQ(avx2->any_overlap(cover.data(), mask.data(), words),
                any_overlap_scalar(cover.data(), mask.data(), words))
          << words << " words, round " << round;

      for (std::uint32_t cursor = 0; cursor < words * 64;
           cursor += 1 + static_cast<std::uint32_t>(rng() % 19)) {
        EXPECT_EQ(avx2->first_uncovered(cover.data(), words, cursor),
                  first_uncovered_scalar(cover.data(), words, cursor))
            << words << " words, round " << round << ", cursor " << cursor;
      }

      std::vector<std::uint64_t> toggled = cover;
      avx2->toggle(toggled.data(), mask.data(), words);
      std::vector<std::uint64_t> expected = cover;
      toggle_scalar(expected.data(), mask.data(), words);
      EXPECT_EQ(toggled, expected) << words << " words, round " << round;
    }
  }
}

}  // namespace
}  // namespace mask_kernels
}  // namespace latticesched
