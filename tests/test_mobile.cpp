// Mobile location-based scheduling (Conclusions) and its simulator.
#include "core/mobile.hpp"

#include <gtest/gtest.h>

#include "sim/mobile_sim.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

MobileScheduler make_scheduler() {
  auto tiling = make_lattice_tiling(shapes::chebyshev_ball(2, 1));
  return MobileScheduler(Lattice::square(), TilingSchedule(std::move(*tiling)));
}

TEST(MobileScheduler, HomePointIsNearestLatticePoint) {
  const MobileScheduler m = make_scheduler();
  EXPECT_EQ(m.home_point({0.1, -0.2}), (Point{0, 0}));
  EXPECT_EQ(m.home_point({2.7, 3.2}), (Point{3, 3}));
}

TEST(MobileScheduler, SlotMatchesUnderlyingScheduleAtLatticePoints) {
  const MobileScheduler m = make_scheduler();
  for (std::int64_t x = -3; x <= 3; ++x) {
    for (std::int64_t y = -3; y <= 3; ++y) {
      const double fx = static_cast<double>(x);
      const double fy = static_cast<double>(y);
      EXPECT_EQ(m.slot_of_location({fx, fy}),
                m.schedule().slot_of(Point{x, y}));
    }
  }
}

TEST(MobileScheduler, RangeFitGate) {
  const MobileScheduler m = make_scheduler();
  // The tile of the origin is a 3x3 block of cells; from the home cell's
  // center a small disc fits, a huge one cannot.
  EXPECT_TRUE(m.range_fits({0.0, 0.0}, 0.2));
  EXPECT_FALSE(m.range_fits({0.0, 0.0}, 10.0));
}

TEST(MobileScheduler, FitDependsOnPositionInsideTile) {
  const MobileScheduler m = make_scheduler();
  // Find the tile containing the origin; radius just under one cell
  // half-width fits at the tile's central cell but not from a corner
  // cell of the tile (the disc would poke into the neighboring tile).
  const Covering cov = m.schedule().tiling().covering(Point{0, 0});
  // Central element of the 3x3 Chebyshev ball is its anchor 0, so the
  // tile center (in the plane) is at `cov.translate`... the translate is
  // the element-0 position; compute the geometric center:
  double cx = 0.0, cy = 0.0;
  const Prototile& tile = m.schedule().tiling().prototile(cov.prototile);
  for (const Point& n : tile.points()) {
    cx += static_cast<double>(cov.translate[0] + n[0]);
    cy += static_cast<double>(cov.translate[1] + n[1]);
  }
  cx /= static_cast<double>(tile.size());
  cy /= static_cast<double>(tile.size());
  EXPECT_TRUE(m.range_fits({cx, cy}, 1.2));
  // From the center of a corner cell of the 3x3 tile, radius 1.2 reaches
  // into the neighbor tile.
  EXPECT_FALSE(m.range_fits({cx + 1.0, cy + 1.0}, 1.2));
}

TEST(MobileScheduler, MaySendCombinesSlotAndFit) {
  const MobileScheduler m = make_scheduler();
  const RealVec x = {0.05, 0.05};
  const std::uint32_t slot = m.slot_of_location(x);
  bool sent = false;
  for (std::uint64_t t = 0; t < m.period(); ++t) {
    const bool ok = m.may_send(x, 0.2, t);
    EXPECT_EQ(ok, t % m.period() == slot);
    sent |= ok;
  }
  EXPECT_TRUE(sent);
  // A disc too large never sends.
  for (std::uint64_t t = 0; t < m.period(); ++t) {
    EXPECT_FALSE(m.may_send(x, 50.0, t));
  }
}

TEST(MobileScheduler, RejectsNon2D) {
  auto tiling3 = make_lattice_tiling(shapes::chebyshev_ball(3, 1));
  ASSERT_TRUE(tiling3.has_value());
  EXPECT_THROW(
      MobileScheduler(Lattice::cubic(3), TilingSchedule(std::move(*tiling3))),
      std::invalid_argument);
}

TEST(MobileSim, LocationRuleIsCollisionFree) {
  MobileConfig cfg;
  cfg.sensors = 24;
  cfg.arena = 12.0;
  cfg.slots = 1500;
  cfg.range = 0.35;
  cfg.speed = 0.08;
  MobileSimulator sim(make_scheduler(), cfg);
  const MobileResult r = sim.run_location_schedule();
  EXPECT_EQ(r.collisions, 0u)
      << "the paper's location-based rule must be collision-free";
  EXPECT_GT(r.successes, 0u) << "the gate must not block everything";
}

TEST(MobileSim, AlohaCollides) {
  MobileConfig cfg;
  cfg.sensors = 24;
  cfg.arena = 12.0;
  cfg.slots = 1500;
  cfg.range = 0.35;
  cfg.aloha_p = 0.3;
  MobileSimulator sim(make_scheduler(), cfg);
  const MobileResult r = sim.run_aloha();
  EXPECT_GT(r.collisions, 0u);
  EXPECT_GT(r.collision_rate(), 0.0);
}

TEST(MobileSim, ResultAccountingConsistent) {
  MobileConfig cfg;
  cfg.sensors = 10;
  cfg.slots = 300;
  MobileSimulator sim(make_scheduler(), cfg);
  const MobileResult r = sim.run_location_schedule();
  EXPECT_EQ(r.successes + r.collisions, r.attempts);
  EXPECT_EQ(r.slots, cfg.slots);
  EXPECT_EQ(r.attempts + r.gate_blocked,
            static_cast<std::uint64_t>(cfg.sensors) * cfg.slots);
}

}  // namespace
}  // namespace latticesched
