// Multi-channel schedules and the bootstrap (flood-sync) simulator.
#include <gtest/gtest.h>

#include "core/multichannel.hpp"
#include "sim/bootstrap.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TilingSchedule base_schedule() {
  return TilingSchedule(*decide_exactness(shapes::chebyshev_ball(2, 1)).tiling);
}

TEST(MultiChannel, PeriodIsCeilOfBase) {
  const TilingSchedule base = base_schedule();  // m = 9
  EXPECT_EQ(MultiChannelSchedule(base, 1).period(), 9u);
  EXPECT_EQ(MultiChannelSchedule(base, 2).period(), 5u);
  EXPECT_EQ(MultiChannelSchedule(base, 3).period(), 3u);
  EXPECT_EQ(MultiChannelSchedule(base, 9).period(), 1u);
  EXPECT_EQ(MultiChannelSchedule(base, 16).period(), 1u);
  EXPECT_THROW(MultiChannelSchedule(base, 0), std::invalid_argument);
}

TEST(MultiChannel, AssignmentsInRange) {
  const MultiChannelSchedule mc(base_schedule(), 4);
  Box::centered(2, 5).for_each([&](const Point& p) {
    const SlotChannel a = mc.assignment_of(p);
    EXPECT_LT(a.slot, mc.period());
    EXPECT_LT(a.channel, mc.channels());
  });
}

TEST(MultiChannel, SingleChannelMatchesBaseSchedule) {
  const TilingSchedule base = base_schedule();
  const MultiChannelSchedule mc(base, 1);
  Box::centered(2, 5).for_each([&](const Point& p) {
    const SlotChannel a = mc.assignment_of(p);
    EXPECT_EQ(a.slot, base.slot_of(p));
    EXPECT_EQ(a.channel, 0u);
  });
}

class MultiChannelSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiChannelSweep, CollisionFreeAndOptimalForEveryChannelCount) {
  const std::uint32_t c = GetParam();
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const MultiChannelSchedule mc(base_schedule(), c);
  EXPECT_TRUE(mc.optimal());
  const Deployment d = Deployment::grid(Box::centered(2, 6), ball);
  const MultiChannelSlots slots = assign_multichannel(mc, d);
  const CollisionReport r = check_collision_free_multichannel(d, slots);
  EXPECT_TRUE(r.collision_free) << "channels=" << c << ": " << r.to_string();
}

INSTANTIATE_TEST_SUITE_P(Channels, MultiChannelSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 9));

TEST(MultiChannel, DetectsPlantedCollision) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::uniform({Point{0, 0}, Point{1, 0}}, ball);
  MultiChannelSlots slots;
  slots.period = 2;
  slots.channels = 2;
  slots.assignment = {{0, 1}, {0, 1}};  // same slot, same channel
  EXPECT_FALSE(check_collision_free_multichannel(d, slots).collision_free);
  slots.assignment = {{0, 1}, {0, 0}};  // same slot, different channel
  EXPECT_TRUE(check_collision_free_multichannel(d, slots).collision_free);
}

TEST(MultiChannel, ValidationErrors) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::uniform({Point{0, 0}}, ball);
  MultiChannelSlots bad;
  bad.period = 1;
  bad.channels = 1;
  EXPECT_THROW(check_collision_free_multichannel(d, bad),
               std::invalid_argument);
  bad.assignment = {{5, 0}};
  EXPECT_THROW(check_collision_free_multichannel(d, bad),
               std::invalid_argument);
}

TEST(MultiChannel, DescriptionMentionsChannels) {
  const MultiChannelSchedule mc(base_schedule(), 3);
  EXPECT_NE(mc.description().find("c=3"), std::string::npos);
  EXPECT_NE(mc.description().find("m=3"), std::string::npos);
}

// ---------------------------------------------------------------------

struct BootstrapWorld {
  Prototile ball = shapes::chebyshev_ball(2, 1);
  Deployment deployment = Deployment::grid(Box::cube(2, 0, 5), ball);
  TilingSchedule schedule = base_schedule();
};

TEST(Bootstrap, ConvergesAndStaysCollisionFree) {
  BootstrapWorld w;
  BootstrapConfig cfg;
  cfg.seed = 11;
  const BootstrapResult r = run_bootstrap(
      w.deployment, Point{0, 0}, assign_slots(w.schedule, w.deployment),
      cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.sync_slots, 0u);
  EXPECT_EQ(r.post_sync_collisions, 0u)
      << "after sync the tiling schedule must be collision-free";
  // Sync times are causally ordered: the root at 0, all others positive.
  std::uint64_t root_time = r.sync_time[*w.deployment.sensor_at(Point{0, 0})];
  EXPECT_EQ(root_time, 0u);
  for (std::size_t i = 0; i < w.deployment.size(); ++i) {
    if (w.deployment.position(i) != (Point{0, 0})) {
      EXPECT_GT(r.sync_time[i], 0u);
      EXPECT_LE(r.sync_time[i], r.sync_slots);
    }
  }
}

TEST(Bootstrap, BeaconsDoCollide) {
  // The sync phase uses ALOHA beacons: with many synced nodes beaconing,
  // collisions must occur (that is exactly the problem the schedule
  // solves once time is agreed).
  BootstrapWorld w;
  BootstrapConfig cfg;
  cfg.seed = 23;
  cfg.beacon_probability = 0.5;  // aggressive -> collisions guaranteed
  const BootstrapResult r = run_bootstrap(
      w.deployment, Point{2, 2}, assign_slots(w.schedule, w.deployment),
      cfg);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.beacon_collisions, 0u);
}

TEST(Bootstrap, TinyBudgetFailsGracefully) {
  BootstrapWorld w;
  BootstrapConfig cfg;
  cfg.max_slots = 1;
  const BootstrapResult r = run_bootstrap(
      w.deployment, Point{0, 0}, assign_slots(w.schedule, w.deployment),
      cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sync_slots, 1u);
}

TEST(Bootstrap, ValidationErrors) {
  BootstrapWorld w;
  const SensorSlots slots = assign_slots(w.schedule, w.deployment);
  EXPECT_THROW(run_bootstrap(w.deployment, Point{50, 50}, slots),
               std::invalid_argument);
  SensorSlots bad;
  bad.period = 0;
  bad.slot.assign(w.deployment.size(), 0);
  EXPECT_THROW(run_bootstrap(w.deployment, Point{0, 0}, bad),
               std::invalid_argument);
}

TEST(Bootstrap, DeterministicForFixedSeed) {
  BootstrapWorld w;
  BootstrapConfig cfg;
  cfg.seed = 99;
  const SensorSlots slots = assign_slots(w.schedule, w.deployment);
  const BootstrapResult a = run_bootstrap(w.deployment, Point{0, 0}, slots,
                                          cfg);
  const BootstrapResult b = run_bootstrap(w.deployment, Point{0, 0}, slots,
                                          cfg);
  EXPECT_EQ(a.sync_slots, b.sync_slots);
  EXPECT_EQ(a.beacon_tx, b.beacon_tx);
  EXPECT_EQ(a.sync_time, b.sync_time);
}

}  // namespace
}  // namespace latticesched
