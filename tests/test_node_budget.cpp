// Regression pin for TorusSearchConfig::node_limit accounting: the
// budget is scoped per torus and — under the parallel root fan-out —
// per root subtree, never globally.  With an ample budget serial and
// parallel searches expand exactly the same nodes; with a truncated
// budget the parallel search may expand more (each subtree owns a full
// budget) but never violates the per-scope cap.
#include <gtest/gtest.h>

#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

std::vector<Prototile> mixed() {
  return {shapes::s_tetromino(), shapes::z_tetromino()};
}

std::uint64_t count_nodes(std::size_t threads, std::uint64_t node_limit,
                          std::size_t* tilings = nullptr) {
  set_parallel_threads(threads);
  TorusSearchConfig cfg;
  cfg.node_limit = node_limit;
  TorusSearchStats stats;
  cfg.stats = &stats;
  // Exhaustive enumeration (limit far above the tiling count) so no
  // early-exit cancellation perturbs the accounting.
  const auto found = all_tilings_on_torus(mixed(), Sublattice::diagonal(
                                              {4, 4}),
                                          100'000, cfg);
  if (tilings != nullptr) *tilings = found.size();
  set_parallel_threads(0);
  return stats.nodes;
}

TEST(NodeBudget, AmpleBudgetSerialAndParallelExpandIdenticalNodes) {
  std::size_t tilings_serial = 0, tilings_parallel = 0;
  const std::uint64_t serial =
      count_nodes(1, 20'000'000, &tilings_serial);
  const std::uint64_t parallel =
      count_nodes(4, 20'000'000, &tilings_parallel);
  EXPECT_GT(tilings_serial, 0u);
  EXPECT_EQ(tilings_serial, tilings_parallel);
  // Within budget the parallel root fan-out partitions the serial DFS
  // exactly: total node counts agree.
  EXPECT_EQ(serial, parallel);
}

TEST(NodeBudget, TruncatedBudgetIsPerTorusSubtree) {
  const std::uint64_t limit = 40;
  // 8 root candidates on the 4x4 torus: one per (prototile, element).
  const std::uint64_t subtrees =
      mixed()[0].size() + mixed()[1].size();

  const std::uint64_t serial = count_nodes(1, limit);
  // Serial: one budget for the whole torus; the search may overshoot by
  // exactly the final budget-exhausting increment.
  EXPECT_LE(serial, limit + 1);

  const std::uint64_t parallel = count_nodes(4, limit);
  // Parallel: each root subtree owns the budget (plus its root trial),
  // so the total may exceed the serial count — the documented
  // serial-vs-parallel divergence — but never subtrees * (limit + 2).
  EXPECT_LE(parallel, subtrees * (limit + 2));
  EXPECT_GE(parallel, serial)
      << "a truncated parallel search must never explore fewer nodes "
         "than the truncated serial search on this workload";
}

TEST(NodeBudget, SweepBudgetAppliesPerTorus) {
  // The F-pentomino is not exact: the sweep visits every torus, each
  // with a fresh budget.  The reported counter (last torus searched)
  // must respect the per-torus cap even though the sweep's total work
  // is many multiples of it.
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}},
                    "F-pentomino");
  set_parallel_threads(1);
  TorusSearchConfig cfg;
  cfg.max_period_cells = 60;
  cfg.node_limit = 25;
  TorusSearchStats stats;
  cfg.stats = &stats;
  const auto t = search_periodic_tiling({f}, cfg);
  set_parallel_threads(0);
  EXPECT_FALSE(t.has_value());
  EXPECT_LE(stats.nodes, cfg.node_limit + 1);
}

}  // namespace
}  // namespace latticesched
