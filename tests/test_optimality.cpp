// Optimality machinery: role conflict graphs (Section 4 / Figure 5) and
// deployment-level chromatic optimality (Theorems 1 and 2).
#include "core/optimality.hpp"

#include <gtest/gtest.h>

#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {
namespace {

TEST(RoleConflictGraph, SingleTileRolesFormClique) {
  const auto tiling = make_lattice_tiling(shapes::rectangle(2, 2));
  ASSERT_TRUE(tiling.has_value());
  const RoleConflictGraph rcg = build_role_conflict_graph(*tiling);
  ASSERT_EQ(rcg.roles.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(rcg.graph.has_edge(i, j));
    }
  }
}

TEST(TilingOptimum, SinglePrototileEqualsTileSize) {
  // Theorem 1: the tiling-constrained optimum is |N| (and the Theorem-2
  // algorithm meets it).
  for (const Prototile& tile :
       {shapes::chebyshev_ball(2, 1), shapes::s_tetromino(),
        shapes::directional_antenna(),
        shapes::euclidean_ball(Lattice::square(), 1.0)}) {
    const auto tiling = make_lattice_tiling(tile);
    ASSERT_TRUE(tiling.has_value()) << tile.name();
    const TilingOptimum opt = optimal_slots_for_tiling(*tiling);
    EXPECT_TRUE(opt.proven) << tile.name();
    EXPECT_EQ(opt.optimal_slots, tile.size()) << tile.name();
    EXPECT_EQ(opt.theorem2_slots, tile.size()) << tile.name();
  }
}

TEST(TilingOptimum, Figure5MixedTilingsSpreadFourToSix) {
  // The paper's Section 4 message, machine-checked: among tilings that
  // mix S and Z tetrominoes, the per-tiling optimum varies — the paper's
  // example needs m = 6 while symmetric tilings achieve m = 4.
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tilings = all_tilings_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), 1000, cfg);
  ASSERT_FALSE(tilings.empty());
  std::uint32_t best = 99, worst = 0;
  for (const Tiling& t : tilings) {
    const TilingOptimum opt = optimal_slots_for_tiling(t);
    ASSERT_TRUE(opt.proven);
    // Theorem 2's algorithm always yields |S ∪ Z| = 6 slots; the true
    // optimum never exceeds it and never beats the clique bound 4.
    EXPECT_EQ(opt.theorem2_slots, 6u);
    EXPECT_GE(opt.optimal_slots, 4u);
    EXPECT_LE(opt.optimal_slots, 6u);
    best = std::min(best, opt.optimal_slots);
    worst = std::max(worst, opt.optimal_slots);
  }
  EXPECT_EQ(best, 4u);   // the symmetric-style tilings
  EXPECT_EQ(worst, 6u);  // the paper's phenomenon: 6 needed
}

TEST(TilingOptimum, PureSTilingIsFour) {
  const auto tiling = make_lattice_tiling(shapes::s_tetromino());
  ASSERT_TRUE(tiling.has_value());
  const TilingOptimum opt = optimal_slots_for_tiling(*tiling);
  EXPECT_EQ(opt.optimal_slots, 4u);
  EXPECT_TRUE(opt.proven);
}

TEST(TilingOptimum, RoleSlotsAreProperColoring) {
  const auto tiling = make_lattice_tiling(shapes::l1_ball(2, 1));
  ASSERT_TRUE(tiling.has_value());
  const RoleConflictGraph rcg = build_role_conflict_graph(*tiling);
  const TilingOptimum opt = optimal_slots_for_tiling(*tiling);
  EXPECT_TRUE(is_proper_coloring(rcg.graph, opt.role_slots));
}

TEST(DeploymentOptimum, WindowOptimumEqualsTileSize) {
  // Theorem 1 + finite restriction: a window containing N+N keeps the
  // optimum at |N| (here: 9 for the Chebyshev ball on a 7x7 window).
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 6), ball);
  const DeploymentOptimum opt = optimal_slots_for_deployment(d);
  EXPECT_TRUE(opt.proven);
  EXPECT_EQ(opt.optimal_slots, 9u);
  EXPECT_EQ(opt.clique_lower_bound, 9u);
}

TEST(DeploymentOptimum, TinyWindowNeedsFewerSlots) {
  // A 2x2 window of Chebyshev-ball sensors: all four conflict pairwise,
  // so the optimum is 4 < 9 — optimality of the restriction fails below
  // the N+N threshold, exactly as the Conclusions caution.
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 1), ball);
  const DeploymentOptimum opt = optimal_slots_for_deployment(d);
  EXPECT_TRUE(opt.proven);
  EXPECT_EQ(opt.optimal_slots, 4u);
}

TEST(DeploymentOptimum, SingleSensor) {
  const Deployment d = Deployment::uniform({Point{0, 0}},
                                           shapes::chebyshev_ball(2, 1));
  EXPECT_EQ(optimal_slots_for_deployment(d).optimal_slots, 1u);
}

}  // namespace
}  // namespace latticesched
