// Determinism contract of the parallel execution layer: every parallel
// path must produce byte-identical results to the serial path.  Each test
// runs the same computation with threads=1 and threads=N and compares
// outputs structurally (tilings placement-by-placement, graphs
// adjacency-by-adjacency).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "graph/interference.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

/// Restores the global thread override on scope exit so test order
/// doesn't leak configuration.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

bool same_tiling(const Tiling& a, const Tiling& b) {
  return a.period() == b.period() && a.placements() == b.placements() &&
         a.prototile_count() == b.prototile_count();
}

TEST(Parallel, ParallelForCoversEveryIndexOnce) {
  ThreadGuard guard;
  set_parallel_threads(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ParallelForPropagatesExceptions) {
  ThreadGuard guard;
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(0, 64,
                   [&](std::size_t i) {
                     if (i == 17) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool survives a throwing region.
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 64, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 64u * 63u / 2u);
}

TEST(Parallel, NestedRegionsRunInline) {
  ThreadGuard guard;
  set_parallel_threads(4);
  std::atomic<int> inner_total{0};
  parallel_for(0, 8, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // A nested region must execute inline rather than deadlock.
    int local = 0;
    parallel_for(0, 16, [&](std::size_t) { ++local; });
    EXPECT_EQ(local, 16);
    inner_total += local;
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(TaskTree, SpawnTreeRunsEveryTaskExactlyOnce) {
  ThreadGuard guard;
  set_parallel_threads(8);
  for (std::size_t parallelism : {1, 4, 8}) {
    std::atomic<int> leaves{0};
    std::function<void(TaskContext&, int)> node = [&](TaskContext& ctx,
                                                      int depth) {
      if (depth == 0) {
        ++leaves;
        return;
      }
      for (int i = 0; i < 2; ++i) {
        ctx.spawn([&node, depth](TaskContext& sub) { node(sub, depth - 1); });
      }
    };
    const TaskTreeStats stats = run_task_tree(
        parallelism, [&](TaskContext& ctx) { node(ctx, 5); });
    EXPECT_EQ(leaves.load(), 32) << parallelism << " workers";
    // Full binary tree of depth 5, root included.
    EXPECT_EQ(stats.tasks, 63u) << parallelism << " workers";
    if (parallelism == 1) EXPECT_EQ(stats.steals, 0u);
  }
}

TEST(TaskTree, WorkerRanksStayInRange) {
  ThreadGuard guard;
  set_parallel_threads(4);
  std::atomic<int> bad{0};
  run_task_tree(4, [&](TaskContext& ctx) {
    for (int i = 0; i < 64; ++i) {
      ctx.spawn([&bad](TaskContext& sub) {
        if (sub.worker() >= 4) ++bad;
      });
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(TaskTree, PropagatesExceptionsAndStopsSpawning) {
  ThreadGuard guard;
  set_parallel_threads(4);
  EXPECT_THROW(run_task_tree(4,
                             [](TaskContext& ctx) {
                               for (int i = 0; i < 8; ++i) {
                                 ctx.spawn([i](TaskContext&) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 });
                               }
                             }),
               std::runtime_error);
  // The scheduler is per-tree; a fresh tree is unaffected.
  std::atomic<int> ran{0};
  run_task_tree(4, [&](TaskContext& ctx) {
    ctx.spawn([&ran](TaskContext&) { ++ran; });
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskTree, RunsInlineInsideParallelRegions) {
  ThreadGuard guard;
  set_parallel_threads(4);
  std::atomic<std::uint64_t> total_steals{0};
  parallel_for(0, 4, [&](std::size_t) {
    // Nested trees must not re-enter the thread pool (deadlock risk);
    // they degrade to the single-worker loop, which never steals.
    std::atomic<int> ran{0};
    const TaskTreeStats stats = run_task_tree(4, [&](TaskContext& ctx) {
      for (int i = 0; i < 4; ++i) {
        ctx.spawn([&ran](TaskContext&) { ++ran; });
      }
    });
    EXPECT_EQ(ran.load(), 4);
    total_steals += stats.steals;
  });
  EXPECT_EQ(total_steals.load(), 0u);
}

TEST(ParallelDeterminism, PeriodSweepMatchesSerial) {
  ThreadGuard guard;
  // Mixed S/Z with every prototile required: the sweep rejects several
  // tori before the first mixed tiling appears.
  const std::vector<Prototile> protos = {shapes::s_tetromino(),
                                         shapes::z_tetromino()};
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  cfg.max_period_cells = 64;

  set_parallel_threads(1);
  const auto serial = search_periodic_tiling(protos, cfg);
  ASSERT_TRUE(serial.has_value());

  for (std::size_t threads : {2, 4, 8}) {
    set_parallel_threads(threads);
    const auto parallel = search_periodic_tiling(protos, cfg);
    ASSERT_TRUE(parallel.has_value()) << threads << " threads";
    EXPECT_TRUE(same_tiling(*serial, *parallel)) << threads << " threads";
  }
}

TEST(ParallelDeterminism, PeriodSweepMatchesSerialWhenUnsatisfiable) {
  ThreadGuard guard;
  // The F-pentomino is not exact (Beauquier–Nivat), so the whole sweep
  // is explored and both modes must agree on the failure.
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F");
  TorusSearchConfig cfg;
  cfg.max_period_cells = 60;

  set_parallel_threads(1);
  TorusSearchStats serial_stats;
  cfg.stats = &serial_stats;
  EXPECT_FALSE(search_periodic_tiling({f}, cfg).has_value());

  set_parallel_threads(4);
  TorusSearchStats parallel_stats;
  cfg.stats = &parallel_stats;
  EXPECT_FALSE(search_periodic_tiling({f}, cfg).has_value());
  // Failure reports the last torus's counters in both modes.
  EXPECT_EQ(serial_stats.nodes, parallel_stats.nodes);
}

TEST(ParallelDeterminism, AllTilingsFanOutMatchesSerial) {
  ThreadGuard guard;
  const std::vector<Prototile> protos = {shapes::s_tetromino(),
                                         shapes::z_tetromino()};
  const Sublattice period = Sublattice::diagonal({4, 4});

  set_parallel_threads(1);
  TorusSearchStats serial_stats;
  TorusSearchConfig cfg;
  cfg.stats = &serial_stats;
  const auto serial = all_tilings_on_torus(protos, period, 100000, cfg);
  ASSERT_FALSE(serial.empty());

  for (std::size_t threads : {2, 8}) {
    set_parallel_threads(threads);
    TorusSearchStats parallel_stats;
    cfg.stats = &parallel_stats;
    const auto parallel = all_tilings_on_torus(protos, period, 100000, cfg);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_tiling(serial[i], parallel[i]))
          << "tiling " << i << " at " << threads << " threads";
    }
    // Fully explored tree: the engines expand the same placements.
    EXPECT_EQ(serial_stats.nodes, parallel_stats.nodes)
        << threads << " threads";
  }
}

TEST(ParallelDeterminism, AllTilingsFanOutRespectsResultLimit) {
  ThreadGuard guard;
  const std::vector<Prototile> protos = {shapes::s_tetromino(),
                                         shapes::z_tetromino()};
  const Sublattice period = Sublattice::diagonal({4, 4});

  set_parallel_threads(1);
  const auto serial = all_tilings_on_torus(protos, period, 5);
  ASSERT_EQ(serial.size(), 5u);

  set_parallel_threads(4);
  const auto parallel = all_tilings_on_torus(protos, period, 5);
  ASSERT_EQ(parallel.size(), 5u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(same_tiling(serial[i], parallel[i])) << "tiling " << i;
  }
}

TEST(ParallelDeterminism, ConflictGraphMatchesSerial) {
  ThreadGuard guard;
  // 24x24 grid = 576 sensors, above the parallel builder's threshold.
  const Deployment d =
      Deployment::grid(Box::cube(2, 0, 23), shapes::chebyshev_ball(2, 1));

  set_parallel_threads(1);
  const Graph serial = build_conflict_graph(d);

  for (std::size_t threads : {2, 8}) {
    set_parallel_threads(threads);
    const Graph parallel = build_conflict_graph(d);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    ASSERT_EQ(serial.edge_count(), parallel.edge_count())
        << threads << " threads";
    for (std::uint32_t u = 0; u < serial.size(); ++u) {
      ASSERT_EQ(serial.neighbors(u), parallel.neighbors(u))
          << "vertex " << u << " at " << threads << " threads";
    }
  }
}

TEST(ParallelDeterminism, ConflictGraphMixedPrototiles) {
  ThreadGuard guard;
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tiling = find_tiling_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), cfg);
  ASSERT_TRUE(tiling.has_value());
  const Deployment d = Deployment::from_tiling(*tiling, Box::centered(2, 12));

  set_parallel_threads(1);
  const Graph serial = build_conflict_graph(d);
  set_parallel_threads(4);
  const Graph parallel = build_conflict_graph(d);
  ASSERT_EQ(serial.edge_count(), parallel.edge_count());
  for (std::uint32_t u = 0; u < serial.size(); ++u) {
    ASSERT_EQ(serial.neighbors(u), parallel.neighbors(u)) << "vertex " << u;
  }
}

}  // namespace
}  // namespace latticesched
