// Batch planning service tests: full-registry batches, the TilingCache
// hit/miss accounting (the second identical batch must be served from
// cache and run >= 5x faster), multichannel and mobile flowing through
// PlanResult, and determinism across thread counts.
#include <gtest/gtest.h>

#include <chrono>

#include "core/mobile.hpp"
#include "core/plan_service.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

double run_seconds(PlanService& service, const std::vector<BatchItem>& items) {
  const Clock::time_point t0 = Clock::now();
  const BatchReport report = service.run(items);
  EXPECT_EQ(report.items.size(), items.size());
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

TEST(PlanService, FullRegistryBatchPlansEveryScenario) {
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  const BatchReport report = service.run(service.registry_batch(params));
  ASSERT_EQ(report.items.size(),
            ScenarioRegistry::global().names().size());
  EXPECT_TRUE(report.all_ok());
  for (const BatchItemReport& item : report.items) {
    EXPECT_TRUE(item.built) << item.scenario << ": " << item.error;
    EXPECT_GT(item.sensors, 0u) << item.scenario;
    ASSERT_FALSE(item.results.empty()) << item.scenario;
    for (const PlanResult& r : item.results) {
      EXPECT_TRUE(r.ok) << item.scenario << "/" << r.backend << ": "
                        << r.error;
      EXPECT_TRUE(r.collision_free) << item.scenario << "/" << r.backend;
    }
  }
}

TEST(PlanService, MultichannelFlowsThroughPlanResult) {
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  params.channels = 3;
  BatchItem item;
  item.query = ScenarioQuery{"multichannel", params};
  const BatchReport report = service.run({item});
  ASSERT_EQ(report.items.size(), 1u);
  const BatchItemReport& mc = report.items.front();
  ASSERT_TRUE(mc.built) << mc.error;
  EXPECT_EQ(mc.channels, 3u);
  for (const PlanResult& r : mc.results) {
    ASSERT_TRUE(r.ok) << r.backend << ": " << r.error;
    // Every backend's schedule folds onto the channels — (slot, channel)
    // assignments in the result, collision verdict covering them.
    ASSERT_TRUE(r.channel_slots.has_value()) << r.backend;
    EXPECT_EQ(r.channel_slots->channels, 3u) << r.backend;
    EXPECT_EQ(r.channel_slots->assignment.size(), mc.sensors) << r.backend;
    EXPECT_EQ(r.channel_slots->period,
              (r.slots.period + 2) / 3)  // ceil(m / 3)
        << r.backend;
    EXPECT_TRUE(r.collision_free) << r.backend;
    EXPECT_EQ(r.effective_period(), r.channel_slots->period) << r.backend;
  }
}

TEST(PlanService, MobileBackendFlowsThroughPlanResult) {
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  BatchItem item;
  item.query = ScenarioQuery{"grid", params};
  item.backends = {"mobile"};
  const BatchReport report = service.run({item});
  ASSERT_EQ(report.items.size(), 1u);
  ASSERT_TRUE(report.items[0].built);
  ASSERT_EQ(report.items[0].results.size(), 1u);
  const PlanResult& r = report.items[0].results[0];
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.collision_free);
  ASSERT_NE(r.mobile, nullptr);
  EXPECT_EQ(r.mobile->period(), 9u);
  // The scheduler is live: the location rule answers queries.
  EXPECT_LT(r.mobile->slot_of_location({0.2, 0.3}), 9u);
}

TEST(PlanService, HexScenarioDrivesMobileWithHexGeometry) {
  PlanService service;
  BatchItem item;
  item.query = ScenarioQuery{"hex", {}};
  item.backends = {"mobile"};
  const BatchReport report = service.run({item});
  ASSERT_TRUE(report.items[0].built) << report.items[0].error;
  const PlanResult& r = report.items[0].results[0];
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_NE(r.mobile, nullptr);
  // The Voronoi cells of the location rule must match the deployment's
  // geometry, not default to the square lattice.
  EXPECT_EQ(r.mobile->lattice().name(), "hexagonal");
  EXPECT_EQ(r.mobile->period(), 7u);  // |hex ball| = 7 (Theorem 1)
}

TEST(PlanService, SecondIdenticalBatchIsServedFromCache) {
  // The acceptance bar: a second identical batch over the full scenario
  // registry is >= 5x faster because every torus search hits the
  // TilingCache.  The batch is tiling-only with verification off so the
  // measured work is exactly what the cache can and cannot save (the
  // collision checker is uncached and identical in both runs; the
  // coloring backends never search).  A radius sweep joins the registry
  // batch so the cold cost is dominated by genuine searches.
  set_parallel_threads(1);  // deterministic counters (no racing misses)
  PlanService service;
  ScenarioParams params;
  params.n = 8;
  std::vector<BatchItem> items =
      service.registry_batch(params, {"tiling"});
  for (const ScenarioQuery& q :
       radius_sweep("grid", params, {2, 3, 4})) {
    BatchItem item;
    item.query = q;
    item.backends = {"tiling"};
    items.push_back(std::move(item));
  }
  for (BatchItem& item : items) item.verify = false;

  const double cold = run_seconds(service, items);
  const TilingCache::Stats after_cold = service.tiling_cache().stats();
  EXPECT_GT(after_cold.misses, 0u);
  EXPECT_GT(after_cold.entries, 0u);

  // Warm runs: every search must hit.  Take the best of two to shield
  // the wall-clock ratio from scheduler noise.
  double warm = run_seconds(service, items);
  warm = std::min(warm, run_seconds(service, items));
  const TilingCache::Stats after_warm = service.tiling_cache().stats();
  EXPECT_EQ(after_warm.misses, after_cold.misses)
      << "a warm batch must not re-run any torus search";
  EXPECT_GT(after_warm.hits, after_cold.hits);

  EXPECT_GE(cold / warm, 5.0)
      << "cold " << cold * 1e3 << "ms vs warm " << warm * 1e3 << "ms";
  set_parallel_threads(0);
}

TEST(PlanService, CacheCountersSurfaceInBatchReports) {
  set_parallel_threads(1);
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  BatchItem item;
  item.query = ScenarioQuery{"grid", params};
  item.backends = {"tiling"};
  const BatchReport cold = service.run({item});
  EXPECT_EQ(cold.cache_misses, 1u);
  EXPECT_EQ(cold.cache_hits, 0u);
  const BatchReport warm = service.run({item});
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hits, 1u);
  set_parallel_threads(0);
}

TEST(PlanService, DynamicItemsRunTheirTraceStepByStep) {
  set_parallel_threads(1);
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  params.steps = 3;
  BatchItem item;
  item.query = ScenarioQuery{"grid-failures", params};
  item.backends = {"tiling", "greedy", "tdma"};
  const BatchReport report = service.run({item});
  set_parallel_threads(0);
  ASSERT_EQ(report.items.size(), 1u);
  const BatchItemReport& out = report.items.front();
  ASSERT_TRUE(out.built) << out.error;
  EXPECT_TRUE(out.all_ok());
  ASSERT_EQ(out.steps.size(), 4u);  // initial + 3 failure rounds
  EXPECT_EQ(out.steps[0].step, 0u);
  EXPECT_EQ(out.steps[0].sensors, 36u);
  std::size_t previous = out.steps[0].sensors + 1;
  for (const BatchStepReport& step : out.steps) {
    EXPECT_LT(step.sensors, previous);  // sensors die every round
    previous = step.sensors;
    ASSERT_EQ(step.results.size(), 3u);
    for (const PlanResult& r : step.results) {
      EXPECT_TRUE(r.ok) << r.backend << ": " << r.error;
      EXPECT_TRUE(r.collision_free) << r.backend;
      EXPECT_EQ(r.slots.slot.size(), step.sensors) << r.backend;
    }
  }
  // results mirrors the final step.
  ASSERT_EQ(out.results.size(), 3u);
  EXPECT_EQ(out.results[0].slots.slot,
            out.steps.back().results[0].slots.slot);
  // The session reused the memoized search: one miss for the grid ball,
  // hits for every later step.
  EXPECT_EQ(report.cache_misses, 1u);
  EXPECT_GE(report.cache_hits, 3u);
}

TEST(PlanService, TraceScriptOverridesTheScenarioTrace) {
  PlanService service;
  ScenarioParams params;
  params.n = 5;
  BatchItem item;
  item.query = ScenarioQuery{"grid", params};  // static scenario...
  item.backends = {"tdma"};
  item.trace_script = "step\nremove 0 0\nstep\nremove 4 4\n";  // ...scripted
  const BatchReport report = service.run({item});
  ASSERT_EQ(report.items.size(), 1u);
  const BatchItemReport& out = report.items.front();
  ASSERT_TRUE(out.built) << out.error;
  ASSERT_EQ(out.steps.size(), 3u);
  EXPECT_EQ(out.steps[0].sensors, 25u);
  EXPECT_EQ(out.steps[1].sensors, 24u);
  EXPECT_EQ(out.steps[2].sensors, 23u);
  EXPECT_TRUE(out.all_ok());

  // A malformed script is an item failure, not a thrown batch.
  BatchItem bad = item;
  bad.trace_script = "remove 0 0\n";  // op before any step
  const BatchReport failed = service.run({bad});
  ASSERT_EQ(failed.items.size(), 1u);
  EXPECT_FALSE(failed.items[0].built);
  EXPECT_NE(failed.items[0].error.find("step"), std::string::npos);
  EXPECT_FALSE(failed.all_ok());
}

TEST(PlanService, FullRegistryWithDynamicScenariosIsDeterministic) {
  // The thread-count determinism pin, now covering traces: dynamic
  // items replan per step, and every step's slot tables must be
  // identical at any pool width.
  ScenarioParams params;
  params.n = 6;
  std::vector<BatchReport> reports;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(threads);
    PlanService service;
    reports.push_back(service.run(service.registry_batch(
        params, {"tiling", "greedy", "tdma"})));
  }
  set_parallel_threads(0);
  ASSERT_EQ(reports[0].items.size(), reports[1].items.size());
  bool saw_dynamic = false;
  for (std::size_t i = 0; i < reports[0].items.size(); ++i) {
    const BatchItemReport& a = reports[0].items[i];
    const BatchItemReport& b = reports[1].items[i];
    ASSERT_EQ(a.steps.size(), b.steps.size()) << a.scenario;
    saw_dynamic = saw_dynamic || !a.steps.empty();
    for (std::size_t s = 0; s < a.steps.size(); ++s) {
      EXPECT_EQ(a.steps[s].step, b.steps[s].step);
      EXPECT_EQ(a.steps[s].sensors, b.steps[s].sensors);
      ASSERT_EQ(a.steps[s].results.size(), b.steps[s].results.size());
      for (std::size_t j = 0; j < a.steps[s].results.size(); ++j) {
        EXPECT_EQ(a.steps[s].results[j].slots.slot,
                  b.steps[s].results[j].slots.slot);
      }
    }
  }
  EXPECT_TRUE(saw_dynamic);
}

TEST(PlanService, ScenarioFailuresAreReportedNotThrown) {
  PlanService service;
  BatchItem bad;
  bad.query = ScenarioQuery{"no-such-scenario", {}};
  BatchItem good;
  good.query = ScenarioQuery{"grid", {}};
  good.backends = {"tdma"};
  const BatchReport report = service.run({bad, good});
  ASSERT_EQ(report.items.size(), 2u);
  EXPECT_FALSE(report.items[0].built);
  EXPECT_NE(report.items[0].error.find("no-such-scenario"),
            std::string::npos);
  EXPECT_TRUE(report.items[1].all_ok());
  EXPECT_FALSE(report.all_ok());

  BatchItem typo;
  typo.query = ScenarioQuery{"grid", {}};
  typo.backends = {"no-such-backend"};
  EXPECT_THROW(service.run({typo}), std::invalid_argument);
}

TEST(PlanService, BatchIsDeterministicAcrossThreadCounts) {
  ScenarioParams params;
  params.n = 6;
  std::vector<BatchReport> reports;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(threads);
    PlanService service;
    reports.push_back(service.run(service.registry_batch(
        params, {"tiling", "dsatur", "tdma"})));
  }
  set_parallel_threads(0);
  ASSERT_EQ(reports[0].items.size(), reports[1].items.size());
  for (std::size_t i = 0; i < reports[0].items.size(); ++i) {
    const BatchItemReport& a = reports[0].items[i];
    const BatchItemReport& b = reports[1].items[i];
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t j = 0; j < a.results.size(); ++j) {
      EXPECT_EQ(a.results[j].backend, b.results[j].backend);
      EXPECT_EQ(a.results[j].slots.slot, b.results[j].slots.slot);
      EXPECT_EQ(a.results[j].slots.period, b.results[j].slots.period);
    }
  }
}

}  // namespace
}  // namespace latticesched
