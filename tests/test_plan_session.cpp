// PlanSession tests: the incremental session API.  The load-bearing
// pin is delta/cold EQUIVALENCE — replan() after any delta sequence
// must produce results identical (slots, verdict, optimality gap) to a
// cold Planner::plan of the final deployment, for every backend and
// every dynamic scenario — plus the incremental-reuse accounting
// (graph patches instead of rebuilds, warm greedy recoloring) and the
// >= 5x incremental-vs-cold wall-clock pin on small-delta steps.
#include <gtest/gtest.h>

#include <chrono>

#include "core/plan_session.hpp"
#include "core/scenario.hpp"
#include "tiling/shapes.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace {

using Clock = std::chrono::steady_clock;

void expect_equivalent(const PlanResult& warm, const PlanResult& cold) {
  EXPECT_EQ(warm.backend, cold.backend);
  EXPECT_EQ(warm.ok, cold.ok) << warm.backend << ": " << warm.error << " / "
                              << cold.error;
  EXPECT_EQ(warm.error, cold.error) << warm.backend;
  EXPECT_EQ(warm.slots.slot, cold.slots.slot) << warm.backend;
  EXPECT_EQ(warm.slots.period, cold.slots.period) << warm.backend;
  EXPECT_EQ(warm.collision_free, cold.collision_free) << warm.backend;
  EXPECT_EQ(warm.verified, cold.verified) << warm.backend;
  EXPECT_EQ(warm.optimality_gap, cold.optimality_gap) << warm.backend;
  EXPECT_EQ(warm.channels, cold.channels) << warm.backend;
  EXPECT_EQ(warm.effective_period(), cold.effective_period())
      << warm.backend;
}

/// Cold plan of the session's CURRENT deployment: a fresh plan_all
/// (fresh scoped cache, fresh conflict graph, no warm state).
std::vector<PlanResult> cold_plan(const PlanSession& session,
                                  const std::vector<std::string>& backends,
                                  const Lattice* lattice = nullptr,
                                  bool verify = true) {
  PlanRequest request;
  request.deployment = &session.deployment();
  request.tiling = session.tiling();
  request.channels = session.channels();
  request.lattice = lattice;
  request.verify = verify;
  return PlannerRegistry::global().plan_all(request, backends);
}

void expect_all_equivalent(std::vector<PlanResult> warm,
                           std::vector<PlanResult> cold) {
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    expect_equivalent(warm[i], cold[i]);
  }
}

Deployment grid_deployment(std::int64_t n, std::int64_t r = 1) {
  return Deployment::grid(Box::cube(2, 0, n - 1),
                          shapes::chebyshev_ball(2, r));
}

TEST(PlanSession, SingleStepSessionMatchesPlanAll) {
  const Deployment d = grid_deployment(6);
  SessionConfig config;
  PlanSession session(grid_deployment(6), config);
  const std::vector<PlanResult> via_session = session.replan();

  PlanRequest request;
  request.deployment = &d;
  const std::vector<PlanResult> via_plan_all =
      PlannerRegistry::global().plan_all(request);
  expect_all_equivalent(via_session, via_plan_all);
  EXPECT_EQ(session.stats().replans, 1u);
  EXPECT_EQ(session.stats().deltas, 0u);
}

TEST(PlanSession, RemovalsReplanEqualsColdAndPatchesTheGraph) {
  SessionConfig config;
  config.backends = {"tiling", "greedy", "dsatur", "tdma"};
  PlanSession session(grid_deployment(8), config);
  (void)session.replan();

  DeploymentDelta delta;
  delta.remove_sensors = {Point{0, 0}, Point{3, 4}, Point{7, 7}};
  session.apply(delta);
  EXPECT_EQ(session.deployment().size(), 61u);

  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));
  EXPECT_EQ(session.stats().graph_builds, 1u);
  EXPECT_EQ(session.stats().graph_patches, 1u);
  EXPECT_EQ(session.stats().warm_greedy, 1u);
}

TEST(PlanSession, AddMoveRadiusChannelsEqualCold) {
  SessionConfig config;
  config.backends = {"tiling", "greedy", "welsh-powell", "tdma"};
  PlanSession session(grid_deployment(6), config);
  (void)session.replan();

  // Adds (off the grid edge), a move, and a channel change.
  DeploymentDelta delta;
  delta.add_sensors.push_back(
      DeploymentDelta::SensorAdd{Point{6, 2}, std::nullopt});
  delta.add_sensors.push_back(
      DeploymentDelta::SensorAdd{Point{7, 2}, std::nullopt});
  delta.move_sensors.push_back(
      DeploymentDelta::SensorMove{Point{0, 0}, Point{6, 0}});
  delta.set_channels = 2;
  session.apply(delta);
  EXPECT_EQ(session.deployment().size(), 38u);
  EXPECT_EQ(session.channels(), 2u);
  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));

  // Fleet-wide radius change: new prototile geometry — the tiling
  // backend re-searches (new cache key), coloring re-runs on the
  // reshaped graph; still cold-identical.
  DeploymentDelta reshape;
  DeploymentDelta::RadiusChange rc;
  rc.radius = 2;
  reshape.set_radius.push_back(rc);
  session.apply(reshape);
  ASSERT_EQ(session.deployment().prototiles().size(), 1u);
  EXPECT_EQ(session.deployment().prototiles()[0].size(), 25u);
  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));
}

TEST(PlanSession, SubsetRadiusChangeCreatesSecondPrototileType) {
  SessionConfig config;
  config.backends = {"greedy", "tdma"};
  PlanSession session(grid_deployment(5), config);
  (void)session.replan();

  DeploymentDelta delta;
  DeploymentDelta::RadiusChange rc;
  rc.sensors = {Point{2, 2}};
  rc.radius = 2;
  delta.set_radius.push_back(rc);
  session.apply(delta);
  EXPECT_EQ(session.deployment().prototiles().size(), 2u);
  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));

  // Restoring the radius dedupes back onto the original prototile.
  DeploymentDelta restore;
  DeploymentDelta::RadiusChange back;
  back.sensors = {Point{2, 2}};
  back.radius = 1;
  restore.set_radius.push_back(back);
  session.apply(restore);
  EXPECT_EQ(session.deployment().prototiles().size(), 1u);
  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));
}

TEST(PlanSession, ScenarioTilingIsDroppedByTheFirstDelta) {
  ScenarioInstance instance = ScenarioRegistry::global().build("figure5");
  SessionConfig config;
  config.backends = {"tiling"};
  config.tiling = &*instance.tiling;
  PlanSession session(std::move(instance.deployment), config);
  EXPECT_NE(session.tiling(), nullptr);
  (void)session.replan();

  DeploymentDelta delta;
  delta.remove_sensors = {session.deployment().position(0)};
  session.apply(delta);
  EXPECT_EQ(session.tiling(), nullptr);
  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));
}

TEST(PlanSession, InvalidDeltasThrowAndLeaveTheSessionUntouched) {
  SessionConfig config;
  config.backends = {"greedy"};
  PlanSession session(grid_deployment(4), config);
  (void)session.replan();
  const std::size_t before = session.deployment().size();

  DeploymentDelta missing;
  missing.remove_sensors = {Point{99, 99}};
  EXPECT_THROW(session.apply(missing), std::invalid_argument);

  DeploymentDelta collide;
  collide.move_sensors.push_back(
      DeploymentDelta::SensorMove{Point{0, 0}, Point{1, 1}});
  EXPECT_THROW(session.apply(collide), std::invalid_argument);

  DeploymentDelta dup_add;
  dup_add.add_sensors.push_back(
      DeploymentDelta::SensorAdd{Point{2, 2}, std::nullopt});
  EXPECT_THROW(session.apply(dup_add), std::invalid_argument);

  DeploymentDelta zero_channels;
  zero_channels.set_channels = 0;
  EXPECT_THROW(session.apply(zero_channels), std::invalid_argument);

  DeploymentDelta moved_and_removed;
  moved_and_removed.remove_sensors = {Point{0, 0}};
  moved_and_removed.move_sensors.push_back(
      DeploymentDelta::SensorMove{Point{0, 0}, Point{9, 9}});
  EXPECT_THROW(session.apply(moved_and_removed), std::invalid_argument);

  EXPECT_EQ(session.deployment().size(), before);
  EXPECT_EQ(session.steps_applied(), 0u);
  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));
}

TEST(PlanSession, LargeDeltaFallsBackToFullRebuildAndStaysExact) {
  SessionConfig config;
  config.backends = {"greedy", "dsatur"};
  PlanSession session(grid_deployment(6), config);
  (void)session.replan();

  // Move half the fleet: far past the patch threshold.
  DeploymentDelta delta;
  for (std::int64_t x = 0; x < 6; ++x) {
    for (std::int64_t y = 0; y < 3; ++y) {
      delta.move_sensors.push_back(
          DeploymentDelta::SensorMove{Point{x, y}, Point{x + 10, y}});
    }
  }
  session.apply(delta);
  expect_all_equivalent(session.replan(),
                        cold_plan(session, config.backends));
  EXPECT_EQ(session.stats().graph_patches, 0u);
  EXPECT_EQ(session.stats().graph_builds, 2u);
  EXPECT_EQ(session.stats().warm_greedy, 0u);
}

TEST(PlanSession, WarmGreedyStaysExactOverLongDeltaChains) {
  SessionConfig config;
  config.backends = {"greedy"};
  PlanSession session(grid_deployment(7), config);
  (void)session.replan();

  Rng rng(7);
  for (int step = 0; step < 8; ++step) {
    DeploymentDelta delta;
    const std::size_t n = session.deployment().size();
    // A couple of removals and one re-add per step.
    delta.remove_sensors.push_back(session.deployment().position(
        static_cast<std::size_t>(rng.next_below(n))));
    const Point spare{static_cast<std::int64_t>(20 + step), 0};
    delta.add_sensors.push_back(
        DeploymentDelta::SensorAdd{spare, std::nullopt});
    session.apply(delta);
    expect_all_equivalent(session.replan(),
                          cold_plan(session, config.backends));
  }
  EXPECT_EQ(session.stats().graph_builds, 1u);
  EXPECT_EQ(session.stats().graph_patches, 8u);
  EXPECT_EQ(session.stats().warm_greedy, 8u);
}

// The acceptance property: random delta sequences on random scenarios,
// every backend, replan() == cold plan of the final deployment.
TEST(PlanSession, PropertyRandomDeltaSequencesEqualColdForEveryBackend) {
  set_parallel_threads(1);
  const std::vector<std::string> backends = {
      "tiling", "greedy", "welsh-powell", "dsatur", "annealing", "tdma",
      "mobile"};
  for (const char* scenario : {"grid", "mobile", "random-subset"}) {
    ScenarioParams params;
    params.n = 5;
    params.seed = 11;
    ScenarioInstance instance =
        ScenarioRegistry::global().build(scenario, params);
    SessionConfig config;
    config.backends = backends;
    if (instance.lattice.has_value()) config.lattice = &*instance.lattice;
    if (instance.tiling.has_value()) config.tiling = &*instance.tiling;
    PlanSession session(std::move(instance.deployment), config);
    expect_all_equivalent(session.replan(),
                          cold_plan(session, backends, config.lattice));

    Rng rng(std::hash<std::string>{}(scenario) & 0xffff);
    for (int step = 0; step < 3; ++step) {
      DeploymentDelta delta;
      const Deployment& d = session.deployment();
      // 1-2 removals, an add on a free cell, sometimes a move or a
      // radius change.
      const std::size_t removals = 1 + rng.next_below(2);
      for (std::size_t k = 0; k < removals && d.size() > k + 2; ++k) {
        const Point victim =
            d.position(static_cast<std::size_t>(rng.next_below(d.size())));
        bool duplicate = false;
        for (const Point& p : delta.remove_sensors) {
          if (p == victim) duplicate = true;
        }
        if (!duplicate) delta.remove_sensors.push_back(victim);
      }
      delta.add_sensors.push_back(DeploymentDelta::SensorAdd{
          Point{static_cast<std::int64_t>(30 + step),
                static_cast<std::int64_t>(rng.next_below(5))},
          std::nullopt});
      if (rng.next_below(2) == 0) {
        DeploymentDelta::RadiusChange rc;
        rc.radius = 1 + static_cast<std::int64_t>(rng.next_below(2));
        delta.set_radius.push_back(rc);
      }
      if (rng.next_below(2) == 0) delta.set_channels = 1 + rng.next_below(3);
      session.apply(delta);
      expect_all_equivalent(session.replan(),
                            cold_plan(session, backends, config.lattice));
    }
  }
  set_parallel_threads(0);
}

// Every dynamic scenario in the registry: replaying its trace through a
// session matches cold plans at every step (the other half of the
// acceptance criterion; PlanService runs exactly this loop).
TEST(PlanSession, DynamicScenarioTracesEqualColdAtEveryStep) {
  set_parallel_threads(1);
  const std::vector<std::string> backends = {"tiling", "greedy", "dsatur",
                                             "tdma"};
  for (const char* name : {"grid-failures", "mobile-churn",
                           "radius-degradation", "staged-rollout"}) {
    ScenarioParams params;
    params.n = 6;
    ScenarioInstance instance =
        ScenarioRegistry::global().build(name, params);
    ASSERT_FALSE(instance.trace.empty()) << name;
    SessionConfig config;
    config.backends = backends;
    PlanSession session(std::move(instance.deployment), config);
    expect_all_equivalent(session.replan(), cold_plan(session, backends));
    for (const MutationStep& step : instance.trace.steps) {
      session.apply(step.delta);
      expect_all_equivalent(session.replan(), cold_plan(session, backends));
    }
  }
  set_parallel_threads(0);
}

TEST(PlanSession, IncrementalReplanAtLeast5xFasterThanColdOnSmallDeltas) {
  // The bench_session acceptance bar, pinned in-tree: warm grid
  // session, one-sensor deltas, incremental replan vs a cold plan of
  // the same deployment.  Verification off so the measured work is
  // what the session can and cannot reuse (the collision checker is
  // delta-independent and identical on both sides).
  set_parallel_threads(1);
  SessionConfig config;
  config.backends = {"tiling", "greedy"};
  config.verify = false;
  PlanSession session(grid_deployment(12, 2), config);
  (void)session.replan();  // warm the session (search + graph + colors)

  double incremental = 1e300, cold = 1e300;
  for (int step = 0; step < 3; ++step) {
    DeploymentDelta delta;
    delta.remove_sensors = {session.deployment().position(
        static_cast<std::size_t>(17 + 5 * step))};
    session.apply(delta);
    const Clock::time_point t0 = Clock::now();
    (void)session.replan();
    incremental = std::min(
        incremental,
        std::chrono::duration<double>(Clock::now() - t0).count());

    const Clock::time_point t1 = Clock::now();
    (void)cold_plan(session, config.backends, nullptr, /*verify=*/false);
    cold = std::min(
        cold, std::chrono::duration<double>(Clock::now() - t1).count());
  }
  EXPECT_GE(cold / incremental, 5.0)
      << "cold " << cold * 1e3 << "ms vs incremental " << incremental * 1e3
      << "ms";
  set_parallel_threads(0);
}

// ---------------------------------------------------------------------------
// Mutation scripts
// ---------------------------------------------------------------------------

TEST(MutationScript, ParsesEveryDirectiveAndRoundTrips) {
  const std::string script =
      "# churn script\n"
      "dim 2\n"
      "step\n"
      "remove 0 0\n"
      "move 1 1 9 9\n"
      "add 5 5\n"
      "add 6 6 r 2\n"
      "step 4\n"
      "radius 2\n"
      "radius 1 at 3 3 4 4\n"
      "channels 2\n";
  const MutationTrace trace = parse_mutation_script(script);
  ASSERT_EQ(trace.steps.size(), 2u);
  EXPECT_EQ(trace.steps[0].at, 1u);
  EXPECT_EQ(trace.steps[1].at, 4u);
  EXPECT_EQ(trace.steps[0].delta.remove_sensors,
            (PointVec{Point{0, 0}}));
  ASSERT_EQ(trace.steps[0].delta.move_sensors.size(), 1u);
  EXPECT_EQ(trace.steps[0].delta.move_sensors[0].to, (Point{9, 9}));
  ASSERT_EQ(trace.steps[0].delta.add_sensors.size(), 2u);
  ASSERT_TRUE(trace.steps[0].delta.add_sensors[1].neighborhood.has_value());
  EXPECT_EQ(trace.steps[0].delta.add_sensors[1].neighborhood->size(), 25u);
  ASSERT_EQ(trace.steps[1].delta.set_radius.size(), 2u);
  EXPECT_TRUE(trace.steps[1].delta.set_radius[0].sensors.empty());
  EXPECT_EQ(trace.steps[1].delta.set_radius[1].sensors.size(), 2u);
  EXPECT_EQ(trace.steps[1].delta.set_channels, 2u);

  // Emit -> parse is the identity on the structured form.
  const std::string emitted = mutation_trace_to_script(trace);
  const MutationTrace reparsed = parse_mutation_script(emitted);
  ASSERT_EQ(reparsed.steps.size(), trace.steps.size());
  for (std::size_t s = 0; s < trace.steps.size(); ++s) {
    EXPECT_EQ(reparsed.steps[s].at, trace.steps[s].at);
    EXPECT_EQ(reparsed.steps[s].delta.remove_sensors,
              trace.steps[s].delta.remove_sensors);
    EXPECT_EQ(reparsed.steps[s].delta.add_sensors.size(),
              trace.steps[s].delta.add_sensors.size());
    EXPECT_EQ(reparsed.steps[s].delta.set_radius.size(),
              trace.steps[s].delta.set_radius.size());
    EXPECT_EQ(reparsed.steps[s].delta.set_channels,
              trace.steps[s].delta.set_channels);
  }
}

TEST(MutationScript, RejectsMalformedInput) {
  EXPECT_THROW(parse_mutation_script("add 1 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_mutation_script("step\nfrobnicate 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_mutation_script("step\nadd 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_mutation_script("step\nadd 1 x\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_mutation_script("step 3\nstep 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_mutation_script("step\nchannels 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_mutation_script("step\nradius -1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_mutation_script("step\ndim 3\n"),
               std::invalid_argument);
  // Line numbers surface in the error.
  try {
    parse_mutation_script("step\nadd 1 1\nbogus\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(MutationScript, ScriptDrivenSessionEqualsColdPlans) {
  const MutationTrace trace = parse_mutation_script(
      "step\nremove 0 0\nremove 1 1\nstep\nadd 8 8\nmove 2 2 9 9\n"
      "step\nradius 2\n");
  SessionConfig config;
  config.backends = {"tiling", "greedy", "tdma"};
  PlanSession session(grid_deployment(6), config);
  (void)session.replan();
  for (const MutationStep& step : trace.steps) {
    session.apply(step.delta);
    expect_all_equivalent(session.replan(),
                          cold_plan(session, config.backends));
  }
}

}  // namespace
}  // namespace latticesched
