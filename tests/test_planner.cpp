// Planner registry unit tests: backend inventory, result surfaces,
// failure reporting, fan-out ordering, the multichannel/mobile planner
// currency and the report emitters.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/mobile.hpp"
#include "core/planner.hpp"
#include "core/report.hpp"
#include "core/tiling_cache.hpp"
#include "tiling/shapes.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

const Deployment& small_grid() {
  static const Deployment d =
      Deployment::grid(Box::cube(2, 0, 5), shapes::chebyshev_ball(2, 1));
  return d;
}

TEST(Planner, RegistryListsBuiltinBackends) {
  const auto names = PlannerRegistry::global().names();
  const std::vector<std::string> expected = {
      "tiling", "greedy",    "welsh-powell", "dsatur",
      "annealing", "tdma", "mobile"};
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
    EXPECT_NE(PlannerRegistry::global().find(name), nullptr) << name;
  }
  EXPECT_EQ(PlannerRegistry::global().find("no-such-backend"), nullptr);
}

TEST(Planner, TilingBackendIsOptimalOnGrid) {
  PlanRequest request;
  request.deployment = &small_grid();
  const PlanResult r =
      PlannerRegistry::global().find("tiling")->plan(request);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.collision_free);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.slots.period, 9u);      // |N| = 9 (Theorem 1)
  EXPECT_EQ(r.lower_bound, 9u);

  // Skipping verification must be visible: collision_free stays
  // (trivially) true but verified records that no checker ran.
  PlanRequest unchecked = request;
  unchecked.verify = false;
  const PlanResult u =
      PlannerRegistry::global().find("tiling")->plan(unchecked);
  ASSERT_TRUE(u.ok) << u.error;
  EXPECT_TRUE(u.collision_free);
  EXPECT_FALSE(u.verified);
  EXPECT_DOUBLE_EQ(r.optimality_gap, 1.0);
  EXPECT_DOUBLE_EQ(r.duty_cycle, 1.0 / 9.0);
  ASSERT_TRUE(r.tiling.has_value());
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(Planner, TdmaBackendUsesOneSlotPerSensor) {
  PlanRequest request;
  request.deployment = &small_grid();
  const PlanResult r = PlannerRegistry::global().find("tdma")->plan(request);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.collision_free);
  EXPECT_EQ(r.slots.period, small_grid().size());
  EXPECT_DOUBLE_EQ(r.slot_balance, 1.0);  // one sensor per slot
}

TEST(Planner, NonExactPrototileFailsGracefully) {
  // The F-pentomino admits no translate tiling: the tiling backend must
  // report the failure instead of throwing out of plan().
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F");
  const Deployment d = Deployment::grid(Box::cube(2, 0, 3), f);
  PlanRequest request;
  request.deployment = &d;
  request.search.max_period_cells = 40;
  const PlanResult r =
      PlannerRegistry::global().find("tiling")->plan(request);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  // The baselines still schedule it.
  const PlanResult ds =
      PlannerRegistry::global().find("dsatur")->plan(request);
  ASSERT_TRUE(ds.ok) << ds.error;
  EXPECT_TRUE(ds.collision_free);
}

TEST(Planner, PlanAllPreservesRequestOrder) {
  PlanRequest request;
  request.deployment = &small_grid();
  request.sa.max_iters = 5'000;
  const std::vector<std::string> order = {"tdma", "tiling", "dsatur"};
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(threads);
    const auto results = PlannerRegistry::global().plan_all(request, order);
    ASSERT_EQ(results.size(), order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(results[i].backend, order[i]) << threads << " threads";
      EXPECT_TRUE(results[i].ok) << results[i].error;
    }
  }
  set_parallel_threads(0);
}

TEST(Planner, PlanAllRejectsUnknownBackendAndNullDeployment) {
  PlanRequest request;
  request.deployment = &small_grid();
  EXPECT_THROW(PlannerRegistry::global().plan_all(request, {"nope"}),
               std::invalid_argument);
  PlanRequest empty;
  EXPECT_THROW(PlannerRegistry::global().plan_all(empty),
               std::invalid_argument);
  EXPECT_THROW(PlannerRegistry::global().find("tiling")->plan(empty),
               std::invalid_argument);
}

TEST(Planner, SharedConflictGraphMatchesPerBackendBuild) {
  PlanRequest request;
  request.deployment = &small_grid();
  request.sa.max_iters = 5'000;
  // plan_all prebuilds the graph; a lone plan() builds its own.  The
  // coloring outcome must not depend on which path supplied the graph.
  const auto all =
      PlannerRegistry::global().plan_all(request, {"greedy", "dsatur"});
  const PlanResult lone_greedy =
      PlannerRegistry::global().find("greedy")->plan(request);
  ASSERT_TRUE(all[0].ok);
  ASSERT_TRUE(lone_greedy.ok);
  EXPECT_EQ(all[0].slots.slot, lone_greedy.slots.slot);
  EXPECT_EQ(all[0].slots.period, lone_greedy.slots.period);
}

TEST(Planner, ParseBackendList) {
  EXPECT_TRUE(parse_backend_list("").empty());
  EXPECT_TRUE(parse_backend_list("all").empty());
  const auto two = parse_backend_list("tiling,tdma");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], "tiling");
  EXPECT_EQ(two[1], "tdma");
}

TEST(Planner, ChannelsFoldEveryBackend) {
  PlanRequest request;
  request.deployment = &small_grid();
  request.channels = 2;
  request.sa.max_iters = 5'000;
  const auto results = PlannerRegistry::global().plan_all(
      request, {"tiling", "dsatur", "tdma"});
  for (const PlanResult& r : results) {
    ASSERT_TRUE(r.ok) << r.backend << ": " << r.error;
    ASSERT_TRUE(r.channel_slots.has_value()) << r.backend;
    EXPECT_EQ(r.channel_slots->channels, 2u);
    EXPECT_EQ(r.channel_slots->period, (r.slots.period + 1) / 2);
    EXPECT_EQ(r.effective_period(), r.channel_slots->period);
    // The verdict covers the folded (slot, channel) schedule.
    EXPECT_TRUE(r.collision_free) << r.backend;
    // Folding preserves the base slot partition: same (slot, channel)
    // pair implies same original slot.
    for (std::size_t i = 0; i < r.slots.slot.size(); ++i) {
      const SlotChannel& a = r.channel_slots->assignment[i];
      EXPECT_EQ(a.slot, r.slots.slot[i] / 2);
      EXPECT_EQ(a.channel, r.slots.slot[i] % 2);
    }
    EXPECT_NEAR(r.duty_cycle, 1.0 / r.effective_period(), 1e-12);
  }
  // The 9-slot tiling schedule on 2 channels: period 5, gap vs
  // ceil(9/2) = 5 is exactly 1 (pigeonhole-optimal).
  EXPECT_EQ(results[0].effective_period(), 5u);
  EXPECT_DOUBLE_EQ(results[0].optimality_gap, 1.0);

  request.channels = 0;
  EXPECT_THROW(PlannerRegistry::global().find("tdma")->plan(request),
               std::invalid_argument);
}

TEST(Planner, MobileBackendOwnsTheLocationScheduler) {
  PlanRequest request;
  request.deployment = &small_grid();
  const PlanResult r =
      PlannerRegistry::global().find("mobile")->plan(request);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.collision_free);
  EXPECT_EQ(r.slots.period, 9u);
  ASSERT_NE(r.mobile, nullptr);
  EXPECT_EQ(r.mobile->period(), 9u);
  ASSERT_TRUE(r.tiling.has_value());
  // The location rule is consistent with the lattice schedule it wraps.
  EXPECT_LT(r.mobile->slot_of_location({0.1, -0.2}), 9u);
}

TEST(Planner, MobileBackendIsTwoDimensionalOnly) {
  const Deployment cube =
      Deployment::grid(Box::cube(3, 0, 3), shapes::chebyshev_ball(3, 1));
  PlanRequest request;
  request.deployment = &cube;
  const Planner* mobile = PlannerRegistry::global().find("mobile");
  ASSERT_NE(mobile, nullptr);
  EXPECT_FALSE(mobile->supports(request));
  // Explicitly named: runs and fails gracefully.
  const PlanResult r = mobile->plan(request);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  // Default "all" selection sits the mobile backend out.
  const auto results = PlannerRegistry::global().plan_all(request);
  for (const PlanResult& res : results) {
    EXPECT_NE(res.backend, "mobile");
    EXPECT_TRUE(res.ok) << res.backend << ": " << res.error;
  }
}

TEST(Planner, TilingCacheServesRepeatPlans) {
  TilingCache cache;
  PlanRequest request;
  request.deployment = &small_grid();
  request.tiling_cache = &cache;
  const PlanResult first =
      PlannerRegistry::global().find("tiling")->plan(request);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(cache.stats().misses, 1u);
  const PlanResult second =
      PlannerRegistry::global().find("tiling")->plan(request);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(first.slots.slot, second.slots.slot);
  // The mobile backend shares the same cache key (same prototiles, same
  // budget): a third plan is another hit.
  const PlanResult third =
      PlannerRegistry::global().find("mobile")->plan(request);
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Planner, ReportEmitters) {
  PlanRequest request;
  request.deployment = &small_grid();
  const auto results =
      PlannerRegistry::global().plan_all(request, {"tiling", "tdma"});
  const std::string csv = plan_results_to_csv(results, "unit");
  EXPECT_NE(csv.find("scenario,step,backend"), std::string::npos);
  EXPECT_NE(csv.find("unit,0,tiling"), std::string::npos);
  EXPECT_NE(csv.find("unit,0,tdma"), std::string::npos);
  const std::string json = plan_results_to_json(results, "unit");
  EXPECT_NE(json.find("\"backend\": \"tiling\""), std::string::npos);
  EXPECT_NE(json.find("\"collision_free\": true"), std::string::npos);
}

}  // namespace
}  // namespace latticesched
