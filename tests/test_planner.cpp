// Planner registry unit tests: backend inventory, result surfaces,
// failure reporting, fan-out ordering and the report emitters.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/planner.hpp"
#include "tiling/shapes.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

const Deployment& small_grid() {
  static const Deployment d =
      Deployment::grid(Box::cube(2, 0, 5), shapes::chebyshev_ball(2, 1));
  return d;
}

TEST(Planner, RegistryListsBuiltinBackends) {
  const auto names = PlannerRegistry::global().names();
  const std::vector<std::string> expected = {
      "tiling", "greedy", "welsh-powell", "dsatur", "annealing", "tdma"};
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
    EXPECT_NE(PlannerRegistry::global().find(name), nullptr) << name;
  }
  EXPECT_EQ(PlannerRegistry::global().find("no-such-backend"), nullptr);
}

TEST(Planner, TilingBackendIsOptimalOnGrid) {
  PlanRequest request;
  request.deployment = &small_grid();
  const PlanResult r =
      PlannerRegistry::global().find("tiling")->plan(request);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.collision_free);
  EXPECT_EQ(r.slots.period, 9u);      // |N| = 9 (Theorem 1)
  EXPECT_EQ(r.lower_bound, 9u);
  EXPECT_DOUBLE_EQ(r.optimality_gap, 1.0);
  EXPECT_DOUBLE_EQ(r.duty_cycle, 1.0 / 9.0);
  ASSERT_TRUE(r.tiling.has_value());
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(Planner, TdmaBackendUsesOneSlotPerSensor) {
  PlanRequest request;
  request.deployment = &small_grid();
  const PlanResult r = PlannerRegistry::global().find("tdma")->plan(request);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.collision_free);
  EXPECT_EQ(r.slots.period, small_grid().size());
  EXPECT_DOUBLE_EQ(r.slot_balance, 1.0);  // one sensor per slot
}

TEST(Planner, NonExactPrototileFailsGracefully) {
  // The F-pentomino admits no translate tiling: the tiling backend must
  // report the failure instead of throwing out of plan().
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F");
  const Deployment d = Deployment::grid(Box::cube(2, 0, 3), f);
  PlanRequest request;
  request.deployment = &d;
  request.search.max_period_cells = 40;
  const PlanResult r =
      PlannerRegistry::global().find("tiling")->plan(request);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  // The baselines still schedule it.
  const PlanResult ds =
      PlannerRegistry::global().find("dsatur")->plan(request);
  ASSERT_TRUE(ds.ok) << ds.error;
  EXPECT_TRUE(ds.collision_free);
}

TEST(Planner, PlanAllPreservesRequestOrder) {
  PlanRequest request;
  request.deployment = &small_grid();
  request.sa.max_iters = 5'000;
  const std::vector<std::string> order = {"tdma", "tiling", "dsatur"};
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(threads);
    const auto results = PlannerRegistry::global().plan_all(request, order);
    ASSERT_EQ(results.size(), order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(results[i].backend, order[i]) << threads << " threads";
      EXPECT_TRUE(results[i].ok) << results[i].error;
    }
  }
  set_parallel_threads(0);
}

TEST(Planner, PlanAllRejectsUnknownBackendAndNullDeployment) {
  PlanRequest request;
  request.deployment = &small_grid();
  EXPECT_THROW(PlannerRegistry::global().plan_all(request, {"nope"}),
               std::invalid_argument);
  PlanRequest empty;
  EXPECT_THROW(PlannerRegistry::global().plan_all(empty),
               std::invalid_argument);
  EXPECT_THROW(PlannerRegistry::global().find("tiling")->plan(empty),
               std::invalid_argument);
}

TEST(Planner, SharedConflictGraphMatchesPerBackendBuild) {
  PlanRequest request;
  request.deployment = &small_grid();
  request.sa.max_iters = 5'000;
  // plan_all prebuilds the graph; a lone plan() builds its own.  The
  // coloring outcome must not depend on which path supplied the graph.
  const auto all =
      PlannerRegistry::global().plan_all(request, {"greedy", "dsatur"});
  const PlanResult lone_greedy =
      PlannerRegistry::global().find("greedy")->plan(request);
  ASSERT_TRUE(all[0].ok);
  ASSERT_TRUE(lone_greedy.ok);
  EXPECT_EQ(all[0].slots.slot, lone_greedy.slots.slot);
  EXPECT_EQ(all[0].slots.period, lone_greedy.slots.period);
}

TEST(Planner, ParseBackendList) {
  EXPECT_TRUE(parse_backend_list("").empty());
  EXPECT_TRUE(parse_backend_list("all").empty());
  const auto two = parse_backend_list("tiling,tdma");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], "tiling");
  EXPECT_EQ(two[1], "tdma");
}

TEST(Planner, ReportEmitters) {
  PlanRequest request;
  request.deployment = &small_grid();
  const auto results =
      PlannerRegistry::global().plan_all(request, {"tiling", "tdma"});
  const std::string csv = plan_results_to_csv(results, "unit");
  EXPECT_NE(csv.find("scenario,backend"), std::string::npos);
  EXPECT_NE(csv.find("unit,tiling"), std::string::npos);
  EXPECT_NE(csv.find("unit,tdma"), std::string::npos);
  const std::string json = plan_results_to_json(results, "unit");
  EXPECT_NE(json.find("\"backend\": \"tiling\""), std::string::npos);
  EXPECT_NE(json.find("\"collision_free\": true"), std::string::npos);
}

}  // namespace
}  // namespace latticesched
