#include "lattice/point.hpp"

#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

namespace latticesched {
namespace {

TEST(Point, DefaultIsZeroDimensional) {
  Point p;
  EXPECT_EQ(p.dim(), 0u);
  EXPECT_TRUE(p.is_zero());
}

TEST(Point, InitializerListConstruction) {
  Point p{3, -4};
  EXPECT_EQ(p.dim(), 2u);
  EXPECT_EQ(p[0], 3);
  EXPECT_EQ(p[1], -4);
}

TEST(Point, VectorConstruction) {
  Point p(std::vector<std::int64_t>{1, 2, 3});
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_EQ(p[2], 3);
}

TEST(Point, UnitVectors) {
  const Point e1 = Point::unit(3, 1);
  EXPECT_EQ(e1, (Point{0, 1, 0}));
  EXPECT_THROW(Point::unit(2, 2), std::invalid_argument);
}

TEST(Point, DimensionLimitEnforced) {
  EXPECT_THROW((void)Point(kMaxDim + 1), std::invalid_argument);
  EXPECT_NO_THROW((void)Point(kMaxDim));
}

TEST(Point, Arithmetic) {
  const Point a{1, 2}, b{3, -1};
  EXPECT_EQ(a + b, (Point{4, 1}));
  EXPECT_EQ(a - b, (Point{-2, 3}));
  EXPECT_EQ(a * 3, (Point{3, 6}));
  EXPECT_EQ(-a, (Point{-1, -2}));
  EXPECT_EQ(2 * b, (Point{6, -2}));
}

TEST(Point, MixedDimensionArithmeticThrows) {
  Point a{1, 2};
  const Point b{1, 2, 3};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.dot(b), std::invalid_argument);
}

TEST(Point, Norms) {
  const Point p{3, -4};
  EXPECT_EQ(p.norm1(), 7);
  EXPECT_EQ(p.norm_inf(), 4);
  EXPECT_EQ(p.norm2_sq(), 25);
  EXPECT_EQ(p.dot(Point{2, 1}), 2);
}

TEST(Point, LexicographicOrder) {
  EXPECT_LT((Point{0, 5}), (Point{1, 0}));
  EXPECT_LT((Point{1, 0}), (Point{1, 1}));
  EXPECT_FALSE((Point{1, 1}) < (Point{1, 1}));
  // Different dimensions order by dimension first.
  EXPECT_LT((Point{9}), (Point{0, 0}));
}

TEST(Point, EqualityRespectsDimension) {
  EXPECT_NE((Point{0}), (Point{0, 0}));
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
}

TEST(Point, AtThrowsOutOfRange) {
  const Point p{1, 2};
  EXPECT_EQ(p.at(1), 2);
  EXPECT_THROW(p.at(2), std::out_of_range);
}

TEST(Point, HashSpreadsAndMatchesEquality) {
  PointSet set;
  for (std::int64_t x = -10; x <= 10; ++x) {
    for (std::int64_t y = -10; y <= 10; ++y) {
      set.insert(Point{x, y});
    }
  }
  EXPECT_EQ(set.size(), 21u * 21u);
  EXPECT_EQ(set.count(Point{0, 0}), 1u);
  EXPECT_EQ(set.count(Point{11, 0}), 0u);
}

TEST(Point, StreamFormat) {
  std::ostringstream os;
  os << Point{1, -2};
  EXPECT_EQ(os.str(), "(1, -2)");
  EXPECT_EQ((Point{3}).to_string(), "(3)");
}

TEST(SortedUnique, SortsAndDeduplicates) {
  PointVec v = {{1, 0}, {0, 0}, {1, 0}, {0, 1}};
  const PointVec u = sorted_unique(v);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[0], (Point{0, 0}));
  EXPECT_EQ(u[1], (Point{0, 1}));
  EXPECT_EQ(u[2], (Point{1, 0}));
}

}  // namespace
}  // namespace latticesched
