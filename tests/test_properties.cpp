// Cross-cutting property tests: randomized end-to-end invariants that tie
// the whole pipeline together.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/collision.hpp"
#include "core/guarded.hpp"
#include "core/optimality.hpp"
#include "core/tiling_scheduler.hpp"
#include "lattice/snf.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

// ---------------------------------------------------------------------
// Property 1: for every exact random polyomino, the full paper pipeline
// holds — schedule period |N|, collision-freedom, per-slot re-tiling,
// and role-graph optimality.
class PipelineProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineProperty, ExactRandomPolyominoesScheduleOptimally) {
  Rng rng(31 * GetParam());
  int exercised = 0;
  for (int trial = 0; trial < 12 && exercised < 5; ++trial) {
    const Prototile tile = test_helpers::random_polyomino(rng, GetParam());
    const ExactnessResult ex = decide_exactness(tile);
    if (!ex.exact) continue;
    ++exercised;
    const TilingSchedule sched(*ex.tiling);
    // Theorem 1: period equals tile size and is optimal.
    ASSERT_EQ(sched.period(), tile.size()) << tile.to_ascii();
    EXPECT_TRUE(sched.optimal());
    // Collision-free on a window.
    const Box bb = tile.bounding_box();
    const std::int64_t reach =
        std::max({std::llabs(bb.lo()[0]), std::llabs(bb.lo()[1]),
                  std::llabs(bb.hi()[0]), std::llabs(bb.hi()[1])});
    const Box window = Box::centered(2, 2 * reach + 4);
    const Deployment d = Deployment::grid(window, tile);
    EXPECT_TRUE(check_collision_free(d, sched).collision_free)
        << tile.to_ascii();
    // Role conflict graph chromatic number equals |N|.
    const TilingOptimum opt = optimal_slots_for_tiling(*ex.tiling);
    EXPECT_TRUE(opt.proven);
    EXPECT_EQ(opt.optimal_slots, tile.size()) << tile.to_ascii();
  }
  // Small tiles are exact often enough that the sweep must fire.
  if (GetParam() <= 6) {
    EXPECT_GT(exercised, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipelineProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------
// Property 2: per-slot sender classes of a Theorem-1 schedule re-tile
// the lattice (Figure 3, randomized over tiles and slots).
class SlotClassProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlotClassProperty, EverySlotClassRetiles) {
  Rng rng(97 * GetParam() + 5);
  for (int trial = 0; trial < 8; ++trial) {
    const Prototile tile = test_helpers::random_polyomino(rng, GetParam());
    const auto ex = decide_exactness(tile);
    if (!ex.exact) continue;
    const TilingSchedule sched(*ex.tiling);
    const Box inner = Box::centered(2, 4);
    const Box outer = inner.expanded(
        4 * static_cast<std::int64_t>(GetParam()) + 4);
    const std::uint32_t slot =
        static_cast<std::uint32_t>(rng.next_below(sched.period()));
    PointMap<int> coverage;
    for (const Point& s : sched.senders_in_slot(slot, outer)) {
      for (const Point& p : tile.translated(s)) ++coverage[p];
    }
    inner.for_each([&](const Point& p) {
      const auto it = coverage.find(p);
      ASSERT_TRUE(it != coverage.end() && it->second == 1)
          << tile.to_ascii() << "slot " << slot << " at " << p;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SlotClassProperty,
                         ::testing::Values(3, 4, 5, 6));

// ---------------------------------------------------------------------
// Property 3: simulator accounting identities hold for every protocol
// under both load regimes.
enum class ProtoKind { kTiling, kTdma, kAloha, kCsma };

class SimInvariants
    : public ::testing::TestWithParam<std::tuple<ProtoKind, bool>> {};

TEST_P(SimInvariants, AccountingAlwaysConsistent) {
  const auto [kind, saturated] = GetParam();
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 5), ball);
  const TilingSchedule sched(*decide_exactness(ball).tiling);

  std::unique_ptr<MacProtocol> mac;
  switch (kind) {
    case ProtoKind::kTiling:
      mac = std::make_unique<SlotScheduleMac>(assign_slots(sched, d));
      break;
    case ProtoKind::kTdma: {
      SensorSlots slots;
      slots.period = static_cast<std::uint32_t>(d.size());
      slots.slot.resize(d.size());
      for (std::uint32_t i = 0; i < d.size(); ++i) slots.slot[i] = i;
      slots.source = "tdma";
      mac = std::make_unique<SlotScheduleMac>(slots);
      break;
    }
    case ProtoKind::kAloha:
      mac = std::make_unique<AlohaMac>(0.2);
      break;
    case ProtoKind::kCsma:
      mac = std::make_unique<CsmaMac>();
      break;
  }
  SimConfig cfg;
  cfg.slots = 1500;
  cfg.saturated = saturated;
  cfg.arrival_rate = 0.08;
  SlotSimulator sim(d, cfg);
  const SimResult r = sim.run(*mac);
  EXPECT_EQ(r.attempted_tx, r.successful_tx + r.failed_tx);
  EXPECT_EQ(r.failed_tx, r.collision_failures + r.loss_failures);
  EXPECT_EQ(r.loss_failures, 0u);  // no loss injected here
  double success_sum = 0.0;
  for (double s : r.per_sensor_success) success_sum += s;
  EXPECT_DOUBLE_EQ(success_sum, static_cast<double>(r.successful_tx));
  if (!saturated) {
    EXPECT_LE(r.latency.count(), r.successful_tx);
    EXPECT_LE(r.drops, r.arrivals);
  }
  // Deterministic schedules never collide.
  if (kind == ProtoKind::kTiling || kind == ProtoKind::kTdma) {
    EXPECT_EQ(r.failed_tx, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, SimInvariants,
    ::testing::Combine(::testing::Values(ProtoKind::kTiling,
                                         ProtoKind::kTdma,
                                         ProtoKind::kAloha,
                                         ProtoKind::kCsma),
                       ::testing::Bool()));

// ---------------------------------------------------------------------
// Property 4: packet-loss injection — failures appear, are classified as
// loss (not collision) under a collision-free schedule, and vanish again
// at loss_rate 0.
TEST(LossInjection, CollisionFreeScheduleOnlySuffersLoss) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 5), ball);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  SimConfig cfg;
  cfg.slots = 2000;
  cfg.saturated = true;
  cfg.loss_rate = 0.05;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(assign_slots(sched, d));
  const SimResult r = sim.run(mac);
  EXPECT_GT(r.loss_failures, 0u);
  EXPECT_EQ(r.collision_failures, 0u)
      << "the schedule must never cause interference";
  EXPECT_EQ(r.failed_tx, r.loss_failures);
  // Rough magnitude: a broadcast has up to 8 listeners; per-broadcast
  // success probability ~ 0.95^listeners ≈ 0.66..0.8.
  EXPECT_GT(r.collision_rate(), 0.1);
  EXPECT_LT(r.collision_rate(), 0.5);
}

TEST(LossInjection, ZeroLossMeansZeroFailures) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 4), ball);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  SimConfig cfg;
  cfg.slots = 900;
  cfg.saturated = true;
  SlotSimulator sim(d, cfg);
  SlotScheduleMac mac(assign_slots(sched, d));
  EXPECT_EQ(sim.run(mac).failed_tx, 0u);
}

// ---------------------------------------------------------------------
// Property 5: guarded schedules tolerate any offsets within their stated
// tolerance (randomized offsets, two guard factors).
class GuardProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GuardProperty, ToleranceIsHonored) {
  const std::uint32_t g = GetParam();
  const std::int64_t tol = guard_tolerance(g);
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Deployment d = Deployment::grid(Box::cube(2, 0, 6), ball);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  const SensorSlots guarded = guarded_slots(assign_slots(sched, d), g);
  Rng rng(g * 101);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<std::int64_t> offsets(d.size());
    for (auto& o : offsets) o = rng.next_int(-tol, tol);
    SimConfig cfg;
    cfg.slots = 9 * g * 20;
    cfg.saturated = true;
    SlotSimulator sim(d, cfg);
    SlotScheduleMac mac(guarded, offsets);
    EXPECT_EQ(sim.run(mac).failed_tx, 0u) << "guard factor " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, GuardProperty, ::testing::Values(3, 5, 7));

// ---------------------------------------------------------------------
// Property 6: slot histograms of tiling schedules are perfectly balanced
// on whole-period windows.
TEST(Analysis, TilingScheduleBalancedOnWholePeriods) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const TilingSchedule sched(*decide_exactness(ball).tiling);
  // Period lattice index 9: a 9x9 window is three periods of the
  // (1,3),(0,9)-style HNF basis along each axis... any 9k x 9k box is a
  // union of full period cells.
  const auto hist = slot_histogram(sched, Box::cube(2, 0, 8));
  ASSERT_EQ(hist.size(), 9u);
  for (std::uint64_t c : hist) {
    EXPECT_EQ(c, 9u);  // 81 points / 9 slots
  }
  EXPECT_DOUBLE_EQ(slot_balance(hist), 1.0);
  EXPECT_DOUBLE_EQ(duty_cycle(sched), 1.0 / 9.0);
}

TEST(Analysis, BalanceDetectsSkew) {
  EXPECT_DOUBLE_EQ(slot_balance({4, 4, 4}), 1.0);
  EXPECT_DOUBLE_EQ(slot_balance({2, 4}), 0.5);
  EXPECT_DOUBLE_EQ(slot_balance({}), 1.0);
  EXPECT_DOUBLE_EQ(slot_balance({0, 0}), 1.0);
}

// ---------------------------------------------------------------------
// Property 7: coset reduction is a homomorphism-compatible normal form.
TEST(SublatticeProperty, ReduceIsCompatibleWithAddition) {
  Rng rng(555);
  for (int trial = 0; trial < 40; ++trial) {
    IntMatrix m(2, 2);
    do {
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
          m.at(r, c) = rng.next_int(-6, 6);
        }
      }
    } while (m.det() == 0);
    const Sublattice sub(m);
    for (int k = 0; k < 20; ++k) {
      const Point p{rng.next_int(-30, 30), rng.next_int(-30, 30)};
      const Point q{rng.next_int(-30, 30), rng.next_int(-30, 30)};
      EXPECT_EQ(sub.reduce(p + q), sub.reduce(sub.reduce(p) + sub.reduce(q)));
      EXPECT_EQ(sub.reduce(p - q), sub.reduce(sub.reduce(p) - sub.reduce(q)));
    }
  }
}

}  // namespace
}  // namespace latticesched
