// Property-style randomized tests for the schedule engine and the
// planner pipeline: random tilings and random points must keep the dense
// slot_of identical to the seed reference, may_send must be periodic,
// slot histograms must be perfectly even on whole-period windows, and
// every registry backend must produce collision-free plans.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/planner.hpp"
#include "core/tiling_scheduler.hpp"
#include "test_helpers.hpp"
#include "tiling/exactness.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace {

Point random_point(Rng& rng, std::int64_t radius) {
  return Point{rng.next_int(-radius, radius), rng.next_int(-radius, radius)};
}

TEST(ScheduleProperties, SlotOfMatchesReferenceOnRandomTilings) {
  Rng rng(2026);
  int exact_seen = 0;
  for (int trial = 0; trial < 40 && exact_seen < 12; ++trial) {
    const Prototile tile =
        test_helpers::random_polyomino(rng, 3 + trial % 5);
    TorusSearchConfig cfg;
    cfg.max_period_cells = 64;
    cfg.node_limit = 200'000;
    const ExactnessResult exact = decide_exactness(tile, cfg);
    if (!exact.tiling.has_value()) continue;
    ++exact_seen;
    const TilingSchedule schedule(*exact.tiling);
    for (int q = 0; q < 200; ++q) {
      const Point p = random_point(rng, 200);
      EXPECT_EQ(schedule.slot_of(p), schedule.slot_of_reference(p))
          << "tile " << trial << " point " << p.to_string();
    }
    // Far beyond the fastmod range the general path must agree too.
    for (int q = 0; q < 20; ++q) {
      const Point p = random_point(rng, std::int64_t{1} << 40);
      EXPECT_EQ(schedule.slot_of(p), schedule.slot_of_reference(p));
    }
  }
  EXPECT_GE(exact_seen, 6) << "random polyomino generator got unlucky";
}

TEST(ScheduleProperties, MaySendIsPeriodic) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const Prototile tile =
        test_helpers::random_polyomino(rng, 3 + trial);
    const ExactnessResult exact = decide_exactness(tile);
    if (!exact.tiling.has_value()) continue;
    const TilingSchedule schedule(*exact.tiling);
    const std::uint32_t m = schedule.period();
    for (int q = 0; q < 50; ++q) {
      const Point p = random_point(rng, 100);
      const std::uint64_t t = rng.next_below(1'000'000);
      EXPECT_EQ(schedule.may_send(p, t), schedule.may_send(p, t + m));
      EXPECT_EQ(schedule.may_send(p, t), schedule.may_send(p, t + 7ull * m));
      // Exactly one send opportunity per period.
      std::uint32_t sends = 0;
      for (std::uint32_t dt = 0; dt < m; ++dt) {
        if (schedule.may_send(p, t + dt)) ++sends;
      }
      EXPECT_EQ(sends, 1u);
    }
  }
}

TEST(ScheduleProperties, SlotHistogramEvenOnWholePeriodWindows) {
  Rng rng(99);
  int checked = 0;
  for (int trial = 0; trial < 30 && checked < 8; ++trial) {
    const Prototile tile =
        test_helpers::random_polyomino(rng, 3 + trial % 4);
    TorusSearchConfig cfg;
    cfg.max_period_cells = 48;
    cfg.node_limit = 200'000;
    // The sweep only produces diagonal periods a·Z x b·Z, whose whole-
    // period windows are boxes.
    const auto tiling = search_periodic_tiling({tile}, cfg);
    if (!tiling.has_value()) continue;
    ++checked;
    const TilingSchedule schedule(*tiling);
    const IntMatrix& basis = tiling->period().basis();
    const std::int64_t a = basis.at(0, 0);
    const std::int64_t b = basis.at(1, 1);
    const Box window(Point{-a, -2 * b}, Point{2 * a - 1, b - 1});  // 3x3 periods
    const auto histogram = slot_histogram(schedule, window);
    ASSERT_EQ(histogram.size(), schedule.period());
    for (std::size_t s = 1; s < histogram.size(); ++s) {
      EXPECT_EQ(histogram[s], histogram[0]) << "slot " << s;
    }
    EXPECT_DOUBLE_EQ(slot_balance(histogram), 1.0);
  }
  EXPECT_GE(checked, 4) << "random polyomino generator got unlucky";
}

TEST(PlannerProperties, EveryBackendCollisionFreeOnGrid) {
  const Deployment d =
      Deployment::grid(Box::cube(2, 0, 6), shapes::chebyshev_ball(2, 1));
  PlanRequest request;
  request.deployment = &d;
  request.sa.max_iters = 20'000;
  const auto results = PlannerRegistry::global().plan_all(request);
  // The default fan-out runs every default-set backend (the auto
  // meta-backend only joins a sweep when named explicitly).
  std::size_t default_set = 0;
  for (const std::string& name : PlannerRegistry::global().names()) {
    if (PlannerRegistry::global().find(name)->in_default_set()) ++default_set;
  }
  ASSERT_EQ(results.size(), default_set);
  for (const PlanResult& r : results) {
    ASSERT_TRUE(r.ok) << r.backend << ": " << r.error;
    EXPECT_TRUE(r.collision_free) << r.backend;
    EXPECT_EQ(r.slots.slot.size(), d.size()) << r.backend;
    // No backend may beat the paper's lower bound.
    EXPECT_GE(r.slots.period, r.lower_bound) << r.backend;
    EXPECT_GE(r.optimality_gap, 1.0) << r.backend;
  }
}

TEST(PlannerProperties, EveryBackendCollisionFreeOnRandomScatter) {
  Rng rng(31337);
  PointVec cells = Box::cube(2, 0, 11).points();
  rng.shuffle(cells);
  cells.resize(cells.size() / 3);
  const Deployment d =
      Deployment::uniform(std::move(cells), shapes::l1_ball(2, 1));
  PlanRequest request;
  request.deployment = &d;
  request.sa.max_iters = 20'000;
  const auto results = PlannerRegistry::global().plan_all(request);
  for (const PlanResult& r : results) {
    ASSERT_TRUE(r.ok) << r.backend << ": " << r.error;
    EXPECT_TRUE(r.collision_free) << r.backend;
  }
}

TEST(PlannerProperties, MixedTilingDeploymentUsesProvidedTiling) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto tiling = find_tiling_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), cfg);
  ASSERT_TRUE(tiling.has_value());
  const Deployment d = Deployment::from_tiling(*tiling, Box::centered(2, 7));
  PlanRequest request;
  request.deployment = &d;
  request.tiling = &*tiling;
  request.sa.max_iters = 10'000;
  const auto results = PlannerRegistry::global().plan_all(request);
  for (const PlanResult& r : results) {
    ASSERT_TRUE(r.ok) << r.backend << ": " << r.error;
    EXPECT_TRUE(r.collision_free) << r.backend;
  }
}

}  // namespace
}  // namespace latticesched
