// Unit tests of MAC protocol decision logic, driven directly (no
// simulator) so each behavioral rule is pinned in isolation.
#include <gtest/gtest.h>

#include "sim/protocols.hpp"

namespace latticesched {
namespace {

SensorSlots three_slot_table() {
  SensorSlots s;
  s.period = 3;
  s.slot = {0, 1, 2};
  s.source = "unit";
  return s;
}

TEST(SlotScheduleMacUnit, FiresExactlyOnOwnSlot) {
  SlotScheduleMac mac(three_slot_table());
  mac.reset(3, 1);
  for (std::uint64_t t = 0; t < 9; ++t) {
    for (std::uint32_t node = 0; node < 3; ++node) {
      EXPECT_EQ(mac.wants_transmit(node, t, false), t % 3 == node);
    }
  }
}

TEST(SlotScheduleMacUnit, PositiveOffsetShiftsEarlier) {
  // offset +1 means the node's local clock is ahead: it transmits when
  // local time (t + 1) hits its slot, i.e. one slot EARLY in real time.
  SlotScheduleMac mac(three_slot_table(), {0, 1, 0});
  mac.reset(3, 1);
  // Node 1 (slot 1, offset +1) transmits at real times t ≡ 0 (mod 3).
  EXPECT_TRUE(mac.wants_transmit(1, 0, false));
  EXPECT_FALSE(mac.wants_transmit(1, 1, false));
}

TEST(SlotScheduleMacUnit, NegativeOffsetWrapsCorrectly) {
  SlotScheduleMac mac(three_slot_table(), {-1, 0, 0});
  mac.reset(3, 1);
  // Node 0 (slot 0, offset -1): local time t-1 ≡ 0 -> t ≡ 1 (mod 3).
  EXPECT_FALSE(mac.wants_transmit(0, 0, false));
  EXPECT_TRUE(mac.wants_transmit(0, 1, false));
  // Large negative offsets must not underflow.
  SlotScheduleMac far(three_slot_table(), {-7, 0, 0});
  far.reset(3, 1);
  // t - 7 ≡ 0 (mod 3) -> t ≡ 1 (mod 3).
  EXPECT_TRUE(far.wants_transmit(0, 1, false));
}

TEST(SlotScheduleMacUnit, IgnoresCarrierSense) {
  SlotScheduleMac mac(three_slot_table());
  mac.reset(3, 1);
  EXPECT_TRUE(mac.wants_transmit(0, 0, true));  // busy channel irrelevant
}

TEST(AlohaMacUnit, RateMatchesProbability) {
  AlohaMac mac(0.25);
  mac.reset(4, 99);
  int fired = 0;
  constexpr int kTrials = 40'000;
  for (int i = 0; i < kTrials; ++i) {
    if (mac.wants_transmit(0, static_cast<std::uint64_t>(i), false)) {
      ++fired;
    }
  }
  EXPECT_NEAR(fired / static_cast<double>(kTrials), 0.25, 0.01);
}

TEST(AlohaMacUnit, DeterministicAcrossResets) {
  AlohaMac a(0.5), b(0.5);
  a.reset(2, 7);
  b.reset(2, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.wants_transmit(0, static_cast<std::uint64_t>(i), false),
              b.wants_transmit(0, static_cast<std::uint64_t>(i), false));
  }
}

TEST(CsmaMacUnit, TransmitsOnIdleChannel) {
  CsmaMac mac(2, 8);
  mac.reset(1, 5);
  EXPECT_TRUE(mac.wants_transmit(0, 0, /*busy=*/false));
}

TEST(CsmaMacUnit, BusyChannelTriggersBackoff) {
  CsmaMac mac(4, 16);
  mac.reset(1, 5);
  EXPECT_FALSE(mac.wants_transmit(0, 0, /*busy=*/true));
  // Backoff counts down over idle slots; within the window the node must
  // eventually transmit again.
  bool fired = false;
  for (std::uint64_t t = 1; t <= 8; ++t) {
    if (mac.wants_transmit(0, t, false)) {
      fired = true;
      break;
    }
  }
  EXPECT_TRUE(fired);
}

TEST(CsmaMacUnit, CollisionDoublesWindowSuccessResets) {
  CsmaMac mac(2, 64);
  mac.reset(1, 5);
  // After repeated failures the backoff draws come from growing windows;
  // we can only observe behavior, so check the qualitative effect: after
  // many failures, the node defers for longer stretches on average than
  // right after a success.
  auto average_defer = [&](int failures) {
    mac.reset(1, 5);
    for (int f = 0; f < failures; ++f) {
      mac.notify_result(0, false);
    }
    // Measure slots until it transmits, averaged over restarts of the
    // deferral (transmissions keep failing).
    int total = 0, rounds = 0;
    std::uint64_t t = 0;
    for (int r = 0; r < 50; ++r) {
      int defer = 0;
      while (!mac.wants_transmit(0, ++t, false)) ++defer;
      mac.notify_result(0, false);  // keep the window saturated
      total += defer;
      ++rounds;
    }
    return total / static_cast<double>(rounds);
  };
  const double after_many_failures = average_defer(6);
  CsmaMac fresh(2, 64);
  fresh.reset(1, 5);
  fresh.notify_result(0, true);  // success: window resets to minimum
  std::uint64_t t = 0;
  int defer_after_success = 0;
  while (!fresh.wants_transmit(0, ++t, false)) ++defer_after_success;
  EXPECT_GT(after_many_failures, 1.0);
  EXPECT_LE(defer_after_success, 2);
}

TEST(ProtocolNames, AreInformative) {
  EXPECT_EQ(SlotScheduleMac(three_slot_table()).name(), "unit(m=3)");
  SlotScheduleMac drifted(three_slot_table(), {0, 0, 1});
  EXPECT_NE(drifted.name().find("drift"), std::string::npos);
}

}  // namespace
}  // namespace latticesched
