#include "tiling/prototile.hpp"

#include <gtest/gtest.h>

#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(Prototile, MustContainOrigin) {
  EXPECT_THROW(Prototile({Point{1, 0}}), std::invalid_argument);
  EXPECT_NO_THROW(Prototile({Point{0, 0}, Point{1, 0}}));
  EXPECT_THROW(Prototile({}), std::invalid_argument);
}

TEST(Prototile, PointsAreSortedAndDeduplicated) {
  const Prototile t({Point{1, 0}, Point{0, 0}, Point{1, 0}, Point{0, 1}});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.element(0), (Point{0, 0}));
  EXPECT_EQ(t.element(1), (Point{0, 1}));
  EXPECT_EQ(t.element(2), (Point{1, 0}));
}

TEST(Prototile, MixedDimensionsThrow) {
  EXPECT_THROW(Prototile({Point{0, 0}, Point{0, 0, 0}}),
               std::invalid_argument);
}

TEST(Prototile, FromAsciiDefaultAnchor) {
  // Default anchor: lexicographically smallest cell.
  const Prototile t = Prototile::from_ascii({"XX"});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(Point{0, 0}));
  EXPECT_TRUE(t.contains(Point{1, 0}));
}

TEST(Prototile, FromAsciiExplicitAnchor) {
  const Prototile t = Prototile::from_ascii({"X.", "OX"});
  EXPECT_TRUE(t.contains(Point{0, 0}));   // the O
  EXPECT_TRUE(t.contains(Point{1, 0}));   // right of O
  EXPECT_TRUE(t.contains(Point{0, 1}));   // above O
  EXPECT_EQ(t.size(), 3u);
}

TEST(Prototile, FromAsciiYAxisPointsUp) {
  const Prototile t = Prototile::from_ascii({"X", "O"});
  EXPECT_TRUE(t.contains(Point{0, 1}));  // the X is ABOVE the anchor
}

TEST(Prototile, FromAsciiRejectsBadInput) {
  EXPECT_THROW(Prototile::from_ascii({"..."}), std::invalid_argument);
  EXPECT_THROW(Prototile::from_ascii({"XQ"}), std::invalid_argument);
  EXPECT_THROW(Prototile::from_ascii({"OO"}), std::invalid_argument);
}

TEST(Prototile, IndexOfMatchesCanonicalOrder) {
  const Prototile t = shapes::l1_ball(2, 1);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.index_of(t.element(i)), i);
  }
  EXPECT_FALSE(t.index_of(Point{5, 5}).has_value());
}

TEST(Prototile, TranslatedShiftsAllPoints) {
  const Prototile t = shapes::rectangle(2, 2);
  const PointVec moved = t.translated(Point{10, -5});
  for (const Point& p : moved) {
    EXPECT_TRUE(t.contains(p - Point{10, -5}));
  }
  EXPECT_EQ(moved.size(), t.size());
}

TEST(Prototile, NormalizedAtReanchors) {
  const Prototile t = shapes::rectangle(3, 1);  // {(0,0),(1,0),(2,0)}
  const Prototile shifted = t.normalized_at(Point{2, 0});
  EXPECT_TRUE(shifted.contains(Point{0, 0}));
  EXPECT_TRUE(shifted.contains(Point{-2, 0}));
  EXPECT_THROW(t.normalized_at(Point{5, 5}), std::invalid_argument);
}

TEST(Prototile, ContainsTileIsRespectability) {
  const Prototile big = shapes::chebyshev_ball(2, 2);
  const Prototile small = shapes::chebyshev_ball(2, 1);
  EXPECT_TRUE(big.contains_tile(small));
  EXPECT_FALSE(small.contains_tile(big));
  EXPECT_TRUE(big.contains_tile(big));
}

TEST(Prototile, MinkowskiSumOfBalls) {
  const Prototile r1 = shapes::chebyshev_ball(2, 1);
  // N + N for the radius-1 Chebyshev ball is the radius-2 ball.
  const PointVec sum = r1.minkowski_sum(r1);
  const Prototile r2 = shapes::chebyshev_ball(2, 2);
  EXPECT_EQ(sum, r2.points());
}

TEST(Prototile, DifferenceSetSymmetric) {
  const Prototile t = shapes::s_tetromino();
  const PointVec diff = t.difference_set();
  for (const Point& p : diff) {
    EXPECT_NE(std::find(diff.begin(), diff.end(), -p), diff.end());
  }
  EXPECT_NE(std::find(diff.begin(), diff.end(), Point{0, 0}), diff.end());
}

TEST(Prototile, BoundingBox) {
  const Prototile t = shapes::z_tetromino();
  const Box bb = t.bounding_box();
  EXPECT_EQ(bb.lo(), (Point{-1, 0}));
  EXPECT_EQ(bb.hi(), (Point{1, 1}));
}

TEST(Prototile, Rotations) {
  const Prototile i2 = shapes::straight_polyomino(2);
  const auto rots = i2.rotations();
  // Horizontal domino: 4 rotations, but 0 and 180° give different anchor
  // sets ({(0,0),(1,0)} vs {(0,0),(-1,0)}), figure out distinctness:
  EXPECT_GE(rots.size(), 2u);
  for (const auto& r : rots) {
    EXPECT_EQ(r.size(), 2u);
    EXPECT_TRUE(r.contains(Point{0, 0}));
  }
  // A Chebyshev ball is rotation invariant.
  EXPECT_EQ(shapes::chebyshev_ball(2, 1).rotations().size(), 1u);
}

TEST(Prototile, ReflectionOfSTetrominoIsZ) {
  const Prototile s = shapes::s_tetromino();
  const Prototile z = shapes::z_tetromino();
  // The reflection of S, re-anchored, equals Z up to translation: compare
  // canonical forms anchored at their lexicographic minimum.
  Prototile refl = s.reflected_x();
  // Re-anchor both at lexicographically smallest element.
  const Prototile refl_canon = refl.normalized_at(refl.points().front());
  const Prototile z_canon = z.normalized_at(z.points().front());
  EXPECT_EQ(refl_canon, z_canon);
}

TEST(Prototile, Connectivity) {
  EXPECT_TRUE(shapes::s_tetromino().is_connected());
  EXPECT_TRUE(shapes::chebyshev_ball(2, 2).is_connected());
  EXPECT_FALSE(Prototile::from_ascii({"X.X"}).is_connected());
  // The l1 ball is connected (diagonal neighbors not needed).
  EXPECT_TRUE(shapes::l1_ball(2, 1).is_connected());
}

TEST(Prototile, ToAsciiShowsOriginAndCells) {
  const std::string art = shapes::l_tromino().to_ascii();
  EXPECT_NE(art.find('O'), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Prototile, AsciiRoundTrip) {
  const Prototile t = shapes::z_tetromino();
  const Prototile back = Prototile::from_ascii([&] {
    std::vector<std::string> rows;
    std::string cur;
    for (char c : t.to_ascii()) {
      if (c == '\n') {
        rows.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    return rows;
  }());
  EXPECT_EQ(back, t);
}

TEST(Prototile, NonTwoDimensionalGuards) {
  const Prototile t3({Point{0, 0, 0}, Point{1, 0, 0}});
  EXPECT_THROW(t3.rotated90(), std::logic_error);
  EXPECT_THROW(t3.is_connected(), std::logic_error);
  EXPECT_THROW(t3.to_ascii(), std::logic_error);
}

}  // namespace
}  // namespace latticesched
