// Region-sharding tests: the spatial partitioner, the streaming
// conflict blocks, and the seam-stitch identity.
//
// The load-bearing pin is EXACTNESS: plan_regions must return exactly
// greedy_coloring(build_conflict_graph(d)) — the serial cold plan —
// for every partition granularity, prototile mix and delta sequence,
// because the region path replaces the materialized conflict graph on
// the scale path and any drift would silently change schedules.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/plan_service.hpp"
#include "core/plan_session.hpp"
#include "core/region_shard.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "dist/coordinator.hpp"
#include "tiling/shapes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace latticesched {
namespace {

Deployment grid_deployment(std::int64_t n, std::int64_t r = 1) {
  return Deployment::grid(Box::cube(2, 0, n - 1),
                          shapes::chebyshev_ball(2, r));
}

/// Mixed-prototile scatter: alternating Chebyshev and l1 neighborhoods
/// over a seeded random subset — exercises the pairwise conflict
/// confirmation the single-prototile fast path skips.
Deployment mixed_scatter(std::int64_t n, std::uint64_t seed) {
  PointVec cells = Box::cube(2, 0, n - 1).points();
  Rng rng(seed);
  rng.shuffle(cells);
  cells.resize(std::max<std::size_t>(2, cells.size() / 2));
  std::vector<std::uint32_t> types;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    types.push_back(static_cast<std::uint32_t>(i % 2));
  }
  return Deployment::assemble(
      std::move(cells), std::move(types),
      {shapes::chebyshev_ball(2, 1), shapes::l1_ball(2, 2)});
}

Coloring serial_greedy(const Deployment& d) {
  return greedy_coloring(build_conflict_graph(d));
}

TEST(RegionShard, PartitionCoversEverySensorExactlyOnce) {
  const Deployment d = grid_deployment(13);
  for (const std::size_t regions : {1, 3, 4, 9, 50}) {
    const RegionGrid grid = partition_regions(d, regions, -1);
    ASSERT_EQ(grid.region_of.size(), d.size());
    std::size_t total = 0;
    for (std::size_t r = 0; r < grid.members.size(); ++r) {
      for (std::uint32_t u : grid.members[r]) {
        EXPECT_EQ(grid.region_of[u], r);
        EXPECT_TRUE(grid.boxes[r].contains(d.position(u)));
      }
      EXPECT_TRUE(std::is_sorted(grid.members[r].begin(),
                                 grid.members[r].end()));
      total += grid.members[r].size();
    }
    EXPECT_EQ(total, d.size());
    EXPECT_GE(grid.halo, interference_reach(d));
  }
}

TEST(RegionShard, HaloNeverBelowInterferenceReach) {
  const Deployment d = grid_deployment(8, 2);
  // r=2 Chebyshev ball: offsets a-b reach norm_inf 4.
  EXPECT_EQ(interference_reach(d), 4);
  EXPECT_EQ(partition_regions(d, 4, -1).halo, 4);
  EXPECT_EQ(partition_regions(d, 4, 1).halo, 4);   // raised to the reach
  EXPECT_EQ(partition_regions(d, 4, 7).halo, 7);   // widening is allowed
}

TEST(RegionShard, ConflictBlockMatchesFullGraphRows) {
  for (const Deployment& d :
       {grid_deployment(9, 2), mixed_scatter(10, 7)}) {
    const Graph g = build_conflict_graph(d);
    std::vector<std::uint32_t> all(d.size());
    for (std::uint32_t i = 0; i < d.size(); ++i) all[i] = i;
    const CsrU32 block = build_conflict_block(d, all);
    ASSERT_EQ(block.rows(), d.size());
    for (std::uint32_t u = 0; u < d.size(); ++u) {
      std::vector<std::uint32_t> expected = g.neighbors(u);
      std::sort(expected.begin(), expected.end());
      const auto row = block.row(u);
      ASSERT_EQ(row.size(), expected.size()) << "sensor " << u;
      EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()))
          << "sensor " << u;
    }
  }
}

TEST(RegionShard, ColdPlanIdenticalToSerialGreedy) {
  for (const std::int64_t n : {5, 12, 16}) {
    for (const std::int64_t r : {1, 2}) {
      const Deployment d = grid_deployment(n, r);
      const Coloring serial = serial_greedy(d);
      for (const std::size_t regions : {1, 2, 4, 9}) {
        RegionShardStats stats;
        const Coloring sharded =
            plan_regions(d, regions, -1, nullptr, &stats);
        EXPECT_EQ(sharded, serial)
            << "n=" << n << " r=" << r << " regions=" << regions;
        EXPECT_EQ(stats.regions, stats.regions_planned);
      }
    }
  }
}

TEST(RegionShard, ColdPlanIdenticalOnMixedPrototiles) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Deployment d = mixed_scatter(12, seed);
    const Coloring serial = serial_greedy(d);
    for (const std::size_t regions : {3, 6}) {
      EXPECT_EQ(plan_regions(d, regions, -1, nullptr, nullptr), serial)
          << "seed=" << seed << " regions=" << regions;
    }
  }
}

TEST(RegionShard, StitchedPlanIsAlwaysProper) {
  for (const std::uint64_t seed : {4u, 9u}) {
    const Deployment d = mixed_scatter(14, seed);
    const Graph g = build_conflict_graph(d);
    for (const std::size_t regions : {2, 5, 8}) {
      EXPECT_TRUE(is_proper_coloring(
          g, plan_regions(d, regions, -1, nullptr, nullptr)))
          << "seed=" << seed << " regions=" << regions;
    }
  }
}

TEST(RegionShard, WarmReplanMatchesColdAfterDeltaSequence) {
  // Drive a region-sharded session through removals, additions and a
  // move; every replan must equal the serial cold plan of the current
  // deployment.
  SessionConfig config;
  config.backends = {"region-greedy"};
  config.regions = 4;
  PlanSession session(grid_deployment(16), config);
  auto check = [&](const char* what) {
    const std::vector<PlanResult> results = session.replan();
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << what << ": " << results[0].error;
    EXPECT_TRUE(results[0].collision_free) << what;
    EXPECT_EQ(results[0].slots.slot, serial_greedy(session.deployment()))
        << what;
  };
  check("cold");

  DeploymentDelta remove;
  remove.remove_sensors = {Point{1, 1}, Point{9, 12}};
  session.apply(remove);
  check("after remove");

  DeploymentDelta add;
  add.add_sensors.push_back(
      DeploymentDelta::SensorAdd{Point{16, 3}, std::nullopt});
  session.apply(add);
  check("after add");

  DeploymentDelta move;
  move.move_sensors.push_back(
      DeploymentDelta::SensorMove{Point{4, 4}, Point{17, 17}});
  session.apply(move);
  check("after move (hull growth re-partitions)");

  DeploymentDelta reshape;
  DeploymentDelta::RadiusChange rc;
  rc.sensors = {Point{8, 8}};
  rc.radius = 2;
  reshape.set_radius.push_back(std::move(rc));
  session.apply(reshape);
  check("after radius change");
}

TEST(RegionShard, SessionRoutesDeltaToDirtyRegionOnly) {
  SessionConfig config;
  config.backends = {"region-greedy"};
  config.regions = 4;
  PlanSession session(grid_deployment(16), config);
  (void)session.replan();
  const PlanSession::Stats after_cold = session.stats();
  EXPECT_EQ(after_cold.regions, 4u);
  EXPECT_EQ(after_cold.regions_replanned, 4u);  // cold = every shard

  // One sensor deep inside region 0 dies: with a halo of 2 the dirty
  // neighborhood stays inside that region's expanded box, so exactly
  // one shard replans.
  DeploymentDelta delta;
  delta.remove_sensors = {Point{1, 1}};
  session.apply(delta);
  (void)session.replan();
  const PlanSession::Stats after_delta = session.stats();
  EXPECT_EQ(after_delta.regions_replanned - after_cold.regions_replanned,
            1u);
  EXPECT_EQ(session.replan()[0].slots.slot,
            serial_greedy(session.deployment()));
}

TEST(RegionShard, RandomChurnKeepsWarmAndColdIdentical) {
  Rng rng(11);
  SessionConfig config;
  config.backends = {"region-greedy"};
  config.regions = 6;
  PlanSession session(grid_deployment(12), config);
  (void)session.replan();
  std::int64_t spare_row = 12;
  for (int step = 0; step < 6; ++step) {
    DeploymentDelta delta;
    if (step % 2 == 0) {
      delta.remove_sensors = {session.deployment().position(
          rng.next_below(session.deployment().size()))};
    } else {
      delta.add_sensors.push_back(DeploymentDelta::SensorAdd{
          Point{spare_row, static_cast<std::int64_t>(step)}, std::nullopt});
      ++spare_row;
    }
    session.apply(delta);
    const std::vector<PlanResult> results = session.replan();
    ASSERT_TRUE(results[0].ok) << "step " << step << ": " << results[0].error;
    EXPECT_EQ(results[0].slots.slot, serial_greedy(session.deployment()))
        << "step " << step;
  }
}

TEST(RegionShard, GridLargeScenarioGeneratesLinearly) {
  ScenarioParams params;
  params.n = 5000;
  const ScenarioInstance inst =
      ScenarioRegistry::global().build("grid-large", params);
  EXPECT_EQ(inst.deployment.size(), 5000u);
  // side = ceil(sqrt(5000)) = 71; first 5000 cells row-major.
  EXPECT_EQ(inst.deployment.position(0), (Point{0, 0}));
  EXPECT_EQ(inst.deployment.position(71), (Point{1, 0}));
  EXPECT_EQ(inst.deployment.position(4999), (Point{70, 29}));
}

TEST(RegionShard, GridScenarioDelegatesToGridLargeAtScale) {
  ScenarioParams params;
  params.n = 100000;  // sensor-count semantics past the threshold
  const ScenarioInstance inst =
      ScenarioRegistry::global().build("grid", params);
  EXPECT_EQ(inst.scenario, "grid-large");
  EXPECT_EQ(inst.deployment.size(), 100000u);
}

TEST(RegionShard, RandomSubsetSparseWindowNeverMaterialized) {
  ScenarioParams params;
  params.n = 100000;  // 10^10-cell window; dense shuffle would OOM
  params.density = 1e-6;
  const ScenarioInstance inst =
      ScenarioRegistry::global().build("random-subset", params);
  EXPECT_EQ(inst.deployment.size(), 10000u);
  // Rejection sampling cannot cover dense scatters; the guard throws
  // instead of silently allocating the quadratic window.
  params.density = 0.75;
  EXPECT_THROW(ScenarioRegistry::global().build("random-subset", params),
               std::invalid_argument);
}

TEST(RegionShard, PeakRssProbeReportsCurrentUsage) {
#ifdef __linux__
  EXPECT_GT(peak_rss_bytes(), 0u);
#else
  SUCCEED();
#endif
}

TEST(RegionShard, ReportFooterRoundTripsRegionCounters) {
  BatchReport report;
  report.items.resize(1);
  report.items[0].scenario = "grid";
  report.items[0].label = "grid(n=4 r=1)";
  report.items[0].built = true;
  report.regions = 16;
  report.seam_sensors = 1234;
  report.stitch_recolored = 56;
  const BatchReport parsed =
      parse_batch_report_json(batch_report_to_json(report));
  EXPECT_EQ(parsed.regions, 16u);
  EXPECT_EQ(parsed.seam_sensors, 1234u);
  EXPECT_EQ(parsed.stitch_recolored, 56u);
}

TEST(RegionShard, BatchItemsRoundTripRegionKnobs) {
  BatchItem item;
  item.query.scenario = "grid-large";
  item.query.params.n = 1000000;
  item.backends = {"region-greedy"};
  item.regions = 64;
  item.region_halo = 3;
  const std::vector<BatchItem> parsed =
      parse_batch_items_json(batch_items_to_json({item}));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].regions, 64u);
  EXPECT_EQ(parsed[0].region_halo, 3);
  EXPECT_EQ(parsed[0].query.params.n, 1000000);
}

TEST(RegionShard, ShardWeightsSaturateInsteadOfWrapping) {
  // n = 2^32 makes the naive n^2 weight wrap to 0; saturated weights
  // keep the million-sensor item the heaviest, so weighted LPT gives it
  // a shard of its own instead of stacking real work on top of it.
  std::vector<BatchItem> items(4);
  items[0].query.params.n = std::int64_t{1} << 32;
  for (std::size_t i = 1; i < items.size(); ++i) {
    items[i].query.params.n = 100;
  }
  const auto shards = dist::ShardCoordinator::partition(
      items, 2, dist::ShardStrategy::kSizeWeighted);
  ASSERT_EQ(shards.size(), 2u);
  for (const auto& shard : shards) {
    if (std::find(shard.begin(), shard.end(), 0u) != shard.end()) {
      EXPECT_EQ(shard.size(), 1u) << "huge item must ride alone";
    }
  }
}

}  // namespace
}  // namespace latticesched
