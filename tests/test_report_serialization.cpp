// Report serialization tests: CSV/JSON round-trips of PlanResult rows
// (including the multichannel fields), schedule CSV with the channel
// columns, and a golden-file pin of the driver's --format json output.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/plan_service.hpp"
#include "core/report.hpp"
#include "core/serialization.hpp"
#include "tiling/shapes.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

std::vector<PlanResult> sample_results(std::uint32_t channels) {
  static const Deployment d =
      Deployment::grid(Box::cube(2, 0, 5), shapes::chebyshev_ball(2, 1));
  PlanRequest request;
  request.deployment = &d;
  request.channels = channels;
  return PlannerRegistry::global().plan_all(request, {"tiling", "tdma"});
}

void expect_rows_match(const PlanResultRow& parsed,
                       const PlanResultRow& expected, bool with_detail) {
  EXPECT_EQ(parsed.scenario, expected.scenario);
  EXPECT_EQ(parsed.backend, expected.backend);
  EXPECT_EQ(parsed.ok, expected.ok);
  EXPECT_EQ(parsed.sensors, expected.sensors);
  EXPECT_EQ(parsed.period, expected.period);
  EXPECT_EQ(parsed.lower_bound, expected.lower_bound);
  EXPECT_NEAR(parsed.optimality_gap, expected.optimality_gap, 1e-5);
  EXPECT_EQ(parsed.collision_free, expected.collision_free);
  EXPECT_EQ(parsed.verified, expected.verified);
  EXPECT_NEAR(parsed.slot_balance, expected.slot_balance, 1e-5);
  EXPECT_NEAR(parsed.duty_cycle, expected.duty_cycle, 1e-5);
  EXPECT_NEAR(parsed.wall_ms, expected.wall_ms,
              1e-5 + expected.wall_ms * 1e-4);
  EXPECT_EQ(parsed.channels, expected.channels);
  EXPECT_EQ(parsed.effective_period, expected.effective_period);
  if (with_detail) EXPECT_EQ(parsed.detail, expected.detail);
  EXPECT_EQ(parsed.error, expected.error);
}

TEST(ReportSerialization, CsvRoundTripWithChannels) {
  const auto results = sample_results(3);
  const std::string csv = plan_results_to_csv(results, "unit");
  const auto rows = parse_plan_results_csv(csv);
  ASSERT_EQ(rows.size(), results.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PlanResultRow expected = to_row(results[i], "unit");
    EXPECT_EQ(expected.channels, 3u);
    EXPECT_EQ(expected.effective_period, (results[i].slots.period + 2) / 3);
    expect_rows_match(rows[i], expected, /*with_detail=*/false);
  }
  EXPECT_THROW(parse_plan_results_csv("bogus\n"), std::invalid_argument);
}

TEST(ReportSerialization, JsonRoundTripWithChannelsAndErrors) {
  // Include a failing backend so the error string round-trips too.
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F");
  const Deployment d = Deployment::grid(Box::cube(2, 0, 3), f);
  PlanRequest request;
  request.deployment = &d;
  request.channels = 2;
  request.search.max_period_cells = 40;
  auto results = PlannerRegistry::global().plan_all(request, {"tiling"});
  auto ok_results = sample_results(2);
  results.insert(results.end(), ok_results.begin(), ok_results.end());

  const std::string json = plan_results_to_json(results, "unit");
  const auto rows = parse_plan_results_json(json);
  ASSERT_EQ(rows.size(), results.size());
  EXPECT_FALSE(rows[0].ok);
  EXPECT_FALSE(rows[0].error.empty());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    expect_rows_match(rows[i], to_row(results[i], "unit"),
                      /*with_detail=*/true);
  }
}

TEST(ReportSerialization, BatchReportEmittersCoverEveryItem) {
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  params.channels = 2;
  std::vector<BatchItem> items;
  for (const char* name : {"grid", "multichannel"}) {
    BatchItem item;
    item.query = ScenarioQuery{name, params};
    item.backends = {"tiling", "tdma"};
    items.push_back(std::move(item));
  }
  const BatchReport report = service.run(items);
  ASSERT_TRUE(report.all_ok());

  const std::string csv = batch_report_to_csv(report);
  const auto csv_rows = parse_plan_results_csv(csv);
  EXPECT_EQ(csv_rows.size(), 4u);  // 2 items x 2 backends
  EXPECT_EQ(csv_rows[0].scenario, report.items[0].label);
  EXPECT_EQ(csv_rows[2].scenario, report.items[1].label);
  EXPECT_EQ(csv_rows[2].channels, 2u);

  const std::string json = batch_report_to_json(report);
  EXPECT_NE(json.find("\"cache\": {\"hits\": "), std::string::npos);
  const auto json_rows = parse_plan_results_json(json);
  ASSERT_EQ(json_rows.size(), 4u);
  for (std::size_t i = 0; i < json_rows.size(); ++i) {
    expect_rows_match(json_rows[i], csv_rows[i], /*with_detail=*/false);
  }
}

TEST(ReportSerialization, ScheduleCsvRoundTripWithChannelColumns) {
  const auto results = sample_results(4);
  const PlanResult& tiling = results.front();
  ASSERT_TRUE(tiling.channel_slots.has_value());
  static const Deployment d =
      Deployment::grid(Box::cube(2, 0, 5), shapes::chebyshev_ball(2, 1));

  const std::string csv =
      schedule_to_csv(d, tiling.slots, &*tiling.channel_slots);
  EXPECT_NE(csv.find("type,slot,period,channel,channels"),
            std::string::npos);
  const ParsedSchedule parsed = parse_schedule_csv(csv);
  ASSERT_EQ(parsed.positions.size(), d.size());
  EXPECT_EQ(parsed.positions, d.positions());
  ASSERT_TRUE(parsed.channels.has_value());
  EXPECT_EQ(parsed.channels->channels, 4u);
  EXPECT_EQ(parsed.channels->period, tiling.channel_slots->period);
  EXPECT_EQ(parsed.channels->assignment, tiling.channel_slots->assignment);
  EXPECT_EQ(parsed.slots.period, tiling.channel_slots->period);

  // The single-channel form still round-trips without the new columns.
  const std::string plain = schedule_to_csv(d, tiling.slots);
  EXPECT_EQ(plain.find("channel"), std::string::npos);
  const ParsedSchedule plain_parsed = parse_schedule_csv(plain);
  EXPECT_FALSE(plain_parsed.channels.has_value());
  EXPECT_EQ(plain_parsed.slots.slot, tiling.slots.slot);
}

TEST(ReportSerialization, DynamicItemsRoundTripWithStepColumn) {
  set_parallel_threads(1);
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  params.steps = 2;
  std::vector<BatchItem> items;
  BatchItem dynamic;
  dynamic.query = ScenarioQuery{"grid-failures", params};
  dynamic.backends = {"tiling", "tdma"};
  items.push_back(dynamic);
  BatchItem still;  // a static item in the same batch keeps step 0 rows
  still.query = ScenarioQuery{"grid", params};
  still.backends = {"tdma"};
  items.push_back(still);
  const BatchReport report = service.run(items);
  set_parallel_threads(0);
  ASSERT_TRUE(report.all_ok());
  ASSERT_EQ(report.items[0].steps.size(), 3u);

  // CSV: one row per (step, backend), step column populated.
  const std::string csv = batch_report_to_csv(report);
  const auto csv_rows = parse_plan_results_csv(csv);
  ASSERT_EQ(csv_rows.size(), 3u * 2u + 1u);
  EXPECT_EQ(csv_rows[0].step, 0u);
  EXPECT_EQ(csv_rows[2].step, 1u);
  EXPECT_EQ(csv_rows[4].step, 2u);
  EXPECT_EQ(csv_rows.back().step, 0u);  // the static item
  EXPECT_GT(csv_rows[0].sensors, csv_rows[2].sensors)
      << "per-step rows must carry the shrinking fleet";

  // JSON: emit -> parse -> emit is the identity, steps included (the
  // distributed merge path depends on this).
  const std::string json = batch_report_to_json(report);
  EXPECT_NE(json.find("\"steps\": 3"), std::string::npos);
  const BatchReport parsed = parse_batch_report_json(json);
  ASSERT_EQ(parsed.items.size(), 2u);
  ASSERT_EQ(parsed.items[0].steps.size(), 3u);
  EXPECT_EQ(parsed.items[0].steps[1].step, 1u);
  EXPECT_EQ(parsed.items[0].steps[1].results.size(), 2u);
  EXPECT_TRUE(parsed.items[1].steps.empty());
  ASSERT_EQ(parsed.items[0].results.size(), 2u);  // final step mirror
  EXPECT_EQ(batch_report_to_json(parsed), json);
}

// Golden-file pin of the driver's `--format json` report shape: the
// test rebuilds the exact batch `latticesched --scenario grid --n 6
// --backends tiling,tdma --threads 1 --format json` runs and compares
// the serialized report (wall times zeroed) against the checked-in
// golden file.
TEST(ReportSerialization, GoldenDriverJson) {
  set_parallel_threads(1);
  PlanService service;
  ScenarioParams params;
  params.n = 6;
  BatchItem item;
  item.query = ScenarioQuery{"grid", params};
  item.backends = {"tiling", "tdma"};
  BatchReport report = service.run({item});
  set_parallel_threads(0);
  // Zero the volatile fields so the serialization is reproducible.  The
  // dispatched mask kernel is host-CPU-dependent (avx2 vs scalar), so it
  // is blanked like the wall times; the line's SHAPE stays pinned.
  report.wall_seconds = 0.0;
  report.search_kernel.clear();
  for (BatchItemReport& it : report.items) {
    for (PlanResult& r : it.results) r.wall_seconds = 0.0;
  }
  const std::string json = batch_report_to_json(report);

  const std::string path = std::string(LATTICESCHED_SOURCE_DIR) +
                           "/tests/golden/driver_grid_json.golden";
  std::ifstream is(path);
  ASSERT_TRUE(is) << "missing golden file " << path;
  std::ostringstream golden;
  golden << is.rdbuf();
  EXPECT_EQ(json, golden.str())
      << "driver JSON schema changed; regenerate " << path;
}

}  // namespace
}  // namespace latticesched
