// Finite-restriction analysis (Conclusions) and schedule CSV round-trips.
#include <sstream>

#include <gtest/gtest.h>

#include "core/restriction.hpp"
#include "core/serialization.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TEST(Restriction, ChebyshevThresholdAtFiveByFive) {
  // N1 = Chebyshev r=1 ⇒ N1+N1 = Chebyshev r=2, a 5x5 block: the
  // optimality guarantee kicks in exactly at window size 5.
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const RestrictionAnalysis small =
      analyze_restriction(Box::cube(2, 0, 3), ball);  // 4x4
  EXPECT_FALSE(small.optimality_guaranteed);
  const RestrictionAnalysis exact_fit =
      analyze_restriction(Box::cube(2, 0, 4), ball);  // 5x5
  EXPECT_TRUE(exact_fit.optimality_guaranteed);
  ASSERT_TRUE(exact_fit.witness.has_value());
  EXPECT_EQ(exact_fit.required_size, 25u);
  // The witness translate places N1+N1 inside D.
  for (const Point& p : ball.minkowski_sum(ball)) {
    EXPECT_TRUE(Box::cube(2, 0, 4).contains(*exact_fit.witness + p));
  }
}

TEST(Restriction, RectangularWindows) {
  const Prototile ant = shapes::directional_antenna();
  // N1+N1 for the 2x4 block spans 3x7 cells; a 3x7 window fits exactly.
  const PointVec sum = ant.minkowski_sum(ant);
  Point lo = sum.front(), hi = sum.front();
  for (const Point& p : sum) {
    for (std::size_t i = 0; i < 2; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  const Box tight(lo, hi);
  EXPECT_TRUE(analyze_restriction(tight, ant).optimality_guaranteed);
  // One row shorter fails.
  const Box short_box(lo, Point{hi[0], hi[1] - 1});
  EXPECT_FALSE(analyze_restriction(short_box, ant).optimality_guaranteed);
}

TEST(Restriction, OffsetWindowsWork) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const Box far = Box::cube(2, 100, 110);
  const RestrictionAnalysis r = analyze_restriction(far, ball);
  EXPECT_TRUE(r.optimality_guaranteed);
  for (const Point& p : ball.minkowski_sum(ball)) {
    EXPECT_TRUE(far.contains(*r.witness + p));
  }
}

TEST(Serialization, RoundTripPreservesEverything) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  const auto tiling = make_lattice_tiling(ball);
  ASSERT_TRUE(tiling.has_value());
  const TilingSchedule sched(*tiling);
  const Deployment d = Deployment::grid(Box::cube(2, -2, 2), ball);
  const SensorSlots slots = assign_slots(sched, d);

  const std::string csv = schedule_to_csv(d, slots);
  const ParsedSchedule parsed = parse_schedule_csv(csv);
  ASSERT_EQ(parsed.positions.size(), d.size());
  EXPECT_EQ(parsed.slots.period, slots.period);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(parsed.positions[i], d.position(i));
    EXPECT_EQ(parsed.types[i], d.type_of(i));
    EXPECT_EQ(parsed.slots.slot[i], slots.slot[i]);
  }
}

TEST(Serialization, HeaderAndShape) {
  const Deployment d = Deployment::uniform({Point{1, -2}},
                                           shapes::l1_ball(2, 1));
  SensorSlots slots;
  slots.period = 5;
  slots.slot = {3};
  const std::string csv = schedule_to_csv(d, slots);
  EXPECT_EQ(csv.rfind("x0,x1,type,slot,period\n", 0), 0u);
  EXPECT_NE(csv.find("1,-2,0,3,5"), std::string::npos);
}

TEST(Serialization, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_schedule_csv(std::string("")), std::invalid_argument);
  EXPECT_THROW(parse_schedule_csv("bad,header,here\n1,2,3\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_schedule_csv("x0,x1,type,slot,period\n1,2,0,1\n"),
      std::invalid_argument);  // row arity
  EXPECT_THROW(
      parse_schedule_csv("x0,x1,type,slot,period\n1,2,0,1,5\n1,3,0,2,6\n"),
      std::invalid_argument);  // inconsistent period
  EXPECT_THROW(
      parse_schedule_csv("x0,x1,type,slot,period\n1,zz,0,1,5\n"),
      std::invalid_argument);  // bad number
}

TEST(Serialization, SizeMismatchThrows) {
  const Deployment d = Deployment::uniform({Point{0, 0}},
                                           shapes::l1_ball(2, 1));
  SensorSlots slots;
  slots.period = 1;
  EXPECT_THROW(schedule_to_csv(d, slots), std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
