#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace latticesched {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 500) << "bucket " << b;
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextIntBadRangeThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.next_int(1, 0), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolRespectsExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(77);
  Rng child = a.split();
  std::set<std::uint64_t> from_a, from_child;
  for (int i = 0; i < 50; ++i) {
    from_a.insert(a());
    from_child.insert(child());
  }
  std::vector<std::uint64_t> common;
  std::set_intersection(from_a.begin(), from_a.end(), from_child.begin(),
                        from_child.end(), std::back_inserter(common));
  EXPECT_TRUE(common.empty());
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
}

}  // namespace
}  // namespace latticesched
