// Scenario library tests: registry inventory, parameterized generators,
// sweep expanders, and cache-aware scenario builds.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"
#include "core/tiling_cache.hpp"

namespace latticesched {
namespace {

TEST(Scenario, RegistryListsBuiltinScenarios) {
  const auto names = ScenarioRegistry::global().names();
  for (const std::string& name :
       {"grid", "hex", "cube3d", "mobile", "figure5", "antennas",
        "multichannel", "random-subset"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
    ASSERT_NE(ScenarioRegistry::global().find(name), nullptr) << name;
  }
  EXPECT_EQ(ScenarioRegistry::global().find("no-such-scenario"), nullptr);
  EXPECT_THROW(ScenarioRegistry::global().build("no-such-scenario"),
               std::invalid_argument);
}

TEST(Scenario, EveryScenarioBuildsWithDefaults) {
  for (const std::string& name : ScenarioRegistry::global().names()) {
    const ScenarioInstance inst = ScenarioRegistry::global().build(name);
    EXPECT_EQ(inst.scenario, name);
    EXPECT_GT(inst.deployment.size(), 0u) << name;
    EXPECT_NE(inst.label.find(name), std::string::npos) << inst.label;
    EXPECT_GE(inst.channels, 1u) << name;
  }
}

TEST(Scenario, ParamsShapeTheInstance) {
  ScenarioParams params;
  params.n = 5;
  params.radius = 2;
  const ScenarioInstance grid =
      ScenarioRegistry::global().build("grid", params);
  EXPECT_EQ(grid.deployment.size(), 25u);
  EXPECT_EQ(grid.deployment.prototiles().front().size(), 25u);  // (2r+1)^2

  params.n = 10;
  params.density = 0.5;
  const ScenarioInstance subset =
      ScenarioRegistry::global().build("random-subset", params);
  EXPECT_EQ(subset.deployment.size(), 50u);  // 100 cells at density 0.5

  // Different seeds scatter differently (same size, same window).
  ScenarioParams other = params;
  other.seed = params.seed + 17;
  const ScenarioInstance subset2 =
      ScenarioRegistry::global().build("random-subset", other);
  ASSERT_EQ(subset.deployment.size(), subset2.deployment.size());
  EXPECT_NE(subset.deployment.positions(), subset2.deployment.positions());

  params.density = 1.5;
  EXPECT_THROW(ScenarioRegistry::global().build("random-subset", params),
               std::invalid_argument);
}

TEST(Scenario, TilingScenariosCarryTheirTiling) {
  for (const std::string& name : {"figure5", "antennas"}) {
    const ScenarioInstance inst = ScenarioRegistry::global().build(name);
    ASSERT_TRUE(inst.tiling.has_value()) << name;
    EXPECT_GT(inst.tiling->prototiles().size(), 1u) << name;
  }
  const ScenarioInstance mc =
      ScenarioRegistry::global().build("multichannel");
  EXPECT_GE(mc.channels, 2u);
}

TEST(Scenario, Figure5BuildUsesTheTilingCache) {
  TilingCache cache;
  (void)ScenarioRegistry::global().build("figure5", {}, &cache);
  const TilingCache::Stats cold = cache.stats();
  EXPECT_EQ(cold.misses, 1u);
  EXPECT_EQ(cold.hits, 0u);
  (void)ScenarioRegistry::global().build("figure5", {}, &cache);
  const TilingCache::Stats warm = cache.stats();
  EXPECT_EQ(warm.misses, 1u);
  EXPECT_EQ(warm.hits, 1u);
}

TEST(Scenario, HexScenarioCarriesItsLattice) {
  const ScenarioInstance hex = ScenarioRegistry::global().build("hex");
  ASSERT_TRUE(hex.lattice.has_value());
  EXPECT_EQ(hex.lattice->name(), "hexagonal");
  // Square-lattice scenarios leave it empty (the planner defaults).
  EXPECT_FALSE(ScenarioRegistry::global().build("grid").lattice.has_value());
}

TEST(Scenario, TilingCacheDoesNotMemoizeTruncatedFailures) {
  // A budget-truncated failure is engine/parallelism-dependent, so the
  // cache must re-run it; an exhaustive (ample-budget) failure is a
  // stable answer and caches normally.
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F");
  TilingCache cache;
  TorusSearchConfig truncated;
  truncated.max_period_cells = 30;
  truncated.node_limit = 5;
  EXPECT_FALSE(cache.find_or_search({f}, truncated).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.find_or_search({f}, truncated).has_value());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);

  TorusSearchConfig ample;
  ample.max_period_cells = 30;  // F-pentomino is not exact: full failure
  EXPECT_FALSE(cache.find_or_search({f}, ample).has_value());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_FALSE(cache.find_or_search({f}, ample).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Scenario, DescribeDocumentsEveryScenario) {
  const std::string text = ScenarioRegistry::global().describe();
  for (const std::string& name : ScenarioRegistry::global().names()) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("--density"), std::string::npos);
}

TEST(Scenario, DynamicScenariosCarrySeededTraces) {
  for (const char* name : {"grid-failures", "mobile-churn",
                           "radius-degradation", "staged-rollout"}) {
    ScenarioParams params;
    params.n = 8;
    const ScenarioInstance a = ScenarioRegistry::global().build(name, params);
    EXPECT_FALSE(a.trace.empty()) << name;
    EXPECT_GT(a.deployment.size(), 0u) << name;
    EXPECT_NE(a.label.find("steps="), std::string::npos) << a.label;
    // Timestamps strictly increase from 1 (step 0 is the initial plan).
    std::uint64_t last = 0;
    for (const MutationStep& step : a.trace.steps) {
      EXPECT_GT(step.at, last) << name;
      last = step.at;
    }
    // Deterministic: same params, byte-identical trace shape.
    const ScenarioInstance b = ScenarioRegistry::global().build(name, params);
    ASSERT_EQ(a.trace.steps.size(), b.trace.steps.size()) << name;
    for (std::size_t s = 0; s < a.trace.steps.size(); ++s) {
      EXPECT_EQ(a.trace.steps[s].delta.remove_sensors,
                b.trace.steps[s].delta.remove_sensors) << name;
      EXPECT_EQ(a.trace.steps[s].delta.add_sensors.size(),
                b.trace.steps[s].delta.add_sensors.size()) << name;
      EXPECT_EQ(a.trace.steps[s].delta.move_sensors.size(),
                b.trace.steps[s].delta.move_sensors.size()) << name;
    }
  }
}

TEST(Scenario, StepsParamBoundsTheTraceLength) {
  ScenarioParams params;
  params.n = 8;
  params.steps = 5;
  const ScenarioInstance inst =
      ScenarioRegistry::global().build("grid-failures", params);
  EXPECT_EQ(inst.trace.steps.size(), 5u);

  // Static scenarios ignore the knob entirely.
  const ScenarioInstance grid =
      ScenarioRegistry::global().build("grid", params);
  EXPECT_TRUE(grid.trace.empty());
}

TEST(Scenario, GridFailuresNeverKillsTheWholeFleet) {
  ScenarioParams params;
  params.n = 3;      // 9 sensors
  params.steps = 50; // far more rounds than sensors
  const ScenarioInstance inst =
      ScenarioRegistry::global().build("grid-failures", params);
  std::size_t removed = 0;
  for (const MutationStep& step : inst.trace.steps) {
    removed += step.delta.remove_sensors.size();
  }
  EXPECT_LT(removed, inst.deployment.size());
}

TEST(Scenario, MobileChurnTracesApplyCleanlyForManySeeds) {
  // Regression: a move whose source was the destination of an earlier
  // move in the SAME step resolves against the pre-delta deployment
  // and used to fail (~1 in 4 seeds).  Every generated trace must
  // apply end to end.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScenarioParams params;
    params.n = 10;
    params.seed = seed;
    params.steps = 4;
    ScenarioInstance inst =
        ScenarioRegistry::global().build("mobile-churn", params);
    SessionConfig config;
    config.backends = {"tdma"};
    config.verify = false;
    PlanSession session(std::move(inst.deployment), config);
    for (const MutationStep& step : inst.trace.steps) {
      ASSERT_NO_THROW(session.apply(step.delta))
          << "seed " << seed << " step " << step.at;
    }
    EXPECT_GT(session.deployment().size(), 0u) << "seed " << seed;
  }
}

TEST(Scenario, StagedRolloutCoversTheFullGridByTheLastStep) {
  ScenarioParams params;
  params.n = 8;
  const ScenarioInstance inst =
      ScenarioRegistry::global().build("staged-rollout", params);
  std::size_t total = inst.deployment.size();
  for (const MutationStep& step : inst.trace.steps) {
    EXPECT_TRUE(step.delta.remove_sensors.empty());
    total += step.delta.add_sensors.size();
  }
  EXPECT_EQ(total, 64u);
}

TEST(Scenario, SweepExpanders) {
  ScenarioParams base;
  base.n = 9;

  const auto radii = radius_sweep("grid", base, {1, 2, 3});
  ASSERT_EQ(radii.size(), 3u);
  EXPECT_EQ(radii[1].params.radius, 2);
  EXPECT_EQ(radii[1].params.n, 9);
  EXPECT_EQ(radii[2].scenario, "grid");

  const auto densities = density_sweep("random-subset", base, {0.2, 0.8});
  ASSERT_EQ(densities.size(), 2u);
  EXPECT_DOUBLE_EQ(densities[1].params.density, 0.8);

  const auto sizes = size_sweep("cube3d", base, {4, 6});
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0].params.n, 4);

  const auto seeds = seed_sweep("mobile", base, 4);
  ASSERT_EQ(seeds.size(), 4u);
  EXPECT_EQ(seeds[3].params.seed, base.seed + 3);
}

}  // namespace
}  // namespace latticesched
