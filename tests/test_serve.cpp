// The TCP planning server (src/serve), end to end and in-process:
// endpoint/flag parsing, the serve fault-plan grammar, and — the
// acceptance bar of the subsystem — N concurrent client sessions whose
// replan results are byte-identical to serial local PlanSession runs,
// including under a drop-connection fault plan with zero sessions lost
// server-side.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/plan_service.hpp"
#include "core/plan_session.hpp"
#include "core/report.hpp"
#include "dist/faults.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"
#include "util/cli.hpp"

namespace latticesched {
namespace {

using serve::ClientConfig;
using serve::PlanClient;
using serve::PlanServer;
using serve::ServerConfig;

// --- endpoint / flag parsing ----------------------------------------------

TEST(ParseHostPort, AcceptsHostPortForms) {
  const serve::HostPort a = serve::parse_host_port("example.com:9000");
  EXPECT_EQ(a.host, "example.com");
  EXPECT_EQ(a.port, 9000);
  const serve::HostPort b = serve::parse_host_port("10.1.2.3:65535");
  EXPECT_EQ(b.host, "10.1.2.3");
  EXPECT_EQ(b.port, 65535);
  // Empty host = loopback, so ":9000" works.
  const serve::HostPort c = serve::parse_host_port(":9000");
  EXPECT_EQ(c.host, "127.0.0.1");
  EXPECT_EQ(c.port, 9000);
}

TEST(ParseHostPort, RejectsMalformedSpecs) {
  EXPECT_THROW((void)serve::parse_host_port("no-colon"),
               std::invalid_argument);
  EXPECT_THROW((void)serve::parse_host_port("host:"), std::invalid_argument);
  EXPECT_THROW((void)serve::parse_host_port("host:nine"),
               std::invalid_argument);
  EXPECT_THROW((void)serve::parse_host_port("host:0"), std::invalid_argument);
  EXPECT_THROW((void)serve::parse_host_port("host:65536"),
               std::invalid_argument);
  EXPECT_THROW((void)serve::parse_host_port("host:-1"),
               std::invalid_argument);
}

TEST(ServeFlags, PortRangeAndTypoHintsJoinTheFlagError) {
  CliParser cli("test");
  cli.add_int_flag("port", 0, 0, 65535, "tcp port");
  cli.add_flag("connect", "", "host:port");
  {
    // Out-of-range --port and an unknown flag surface in ONE message,
    // with a typo hint for the near-miss.
    const char* argv[] = {"prog", "--port", "70000", "--conect", "x:1"};
    try {
      cli.parse(5, argv);
      FAIL() << "expected a joined flag error";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("--conect"), std::string::npos) << what;
      EXPECT_NE(what.find("did you mean --connect?"), std::string::npos)
          << what;
      EXPECT_NE(what.find("--port: must be <= 65535"), std::string::npos)
          << what;
    }
  }
  {
    CliParser cli2("test");
    cli2.add_int_flag("port", 0, 0, 65535, "tcp port");
    const char* argv[] = {"prog", "--port", "-1"};
    EXPECT_THROW(cli2.parse(3, argv), std::invalid_argument);
  }
}

// --- serve fault-plan grammar ---------------------------------------------

TEST(ServeFaults, GrammarParsesScopesAndRoundTrips) {
  const dist::FaultPlan plan = dist::FaultPlan::parse(
      "serve:drop-connection:after-frames=2:gens=3;"
      "serve:delay-accept-ms=40:gens=1;worker=0:crash:after-frames=1");
  EXPECT_TRUE(plan.has_serve_faults());
  // Round-trip through the spec text.
  const dist::FaultPlan again = dist::FaultPlan::parse(plan.to_spec());
  EXPECT_EQ(again.to_spec(), plan.to_spec());

  // for_worker must NEVER forward serve kinds to worker processes.
  const dist::FaultPlan w0 = plan.for_worker(0, 0);
  EXPECT_FALSE(w0.has_serve_faults());
  EXPECT_FALSE(w0.actions.empty());  // the crash action survives

  // for_connection scopes by accept order: gens=3 covers connections
  // 0..2, and the delay-accept action only connection 0.
  EXPECT_EQ(plan.for_connection(0).actions.size(), 2u);
  EXPECT_EQ(plan.for_connection(2).actions.size(), 1u);
  EXPECT_EQ(plan.for_connection(3).actions.size(), 0u);
}

// --- live server: correctness under concurrency and faults ----------------

std::string normalize_wall(std::string json) {
  for (const std::string needle : {"\"wall_ms\": ", "\"wall_seconds\": "}) {
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
      pos += needle.size();
      std::size_t end = pos;
      while (end < json.size() && json[end] != ',' && json[end] != '}' &&
             json[end] != '\n') {
        ++end;
      }
      json.replace(pos, end - pos, "0");
      ++pos;
    }
  }
  return json;
}

/// Cache/search counters depend on warmth and sharing (the server's one
/// cache serves every client), not on the answer; blank them too.
std::string normalize_volatile(std::string json) {
  json = normalize_wall(std::move(json));
  for (const std::string needle : {"\"cache\": {", "\"search\": {"}) {
    const std::size_t pos = json.find(needle);
    if (pos != std::string::npos) {
      const std::size_t end = json.find('}', pos);
      json.replace(pos, end - pos + 1, needle + "0}");
    }
  }
  return json;
}

std::vector<BatchItem> items_for_client(std::size_t client) {
  // Distinct work per client: a dynamic grid-failures trace (seed and
  // size vary) plus a static item, all on the deterministic backends.
  std::vector<BatchItem> items;
  BatchItem dynamic;
  dynamic.query.scenario = "grid-failures";
  dynamic.query.params.n = 6 + static_cast<std::int64_t>(client % 3);
  dynamic.query.params.seed = 11 + client;
  dynamic.query.params.steps = 2 + static_cast<std::int64_t>(client % 2);
  dynamic.backends = {"greedy", "dsatur"};
  items.push_back(dynamic);
  BatchItem fixed;
  fixed.query.scenario = client % 2 == 0 ? "grid" : "hex";
  fixed.query.params.n = 7;
  fixed.backends = {"greedy", "tdma"};
  items.push_back(fixed);
  return items;
}

TEST(PlanServe, ConcurrentSessionsMatchSerialRunsByteForByte) {
  PlanServer server{ServerConfig{}};
  server.start();
  constexpr std::size_t kClients = 8;
  std::vector<std::string> remote(kClients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientConfig config;
      config.port = server.port();
      PlanClient client(config);
      remote[c] = batch_report_to_json(client.run_items(items_for_client(c)));
    });
  }
  for (std::thread& t : threads) t.join();
  server.stop();

  for (std::size_t c = 0; c < kClients; ++c) {
    // A fresh service per comparison: result bytes must not depend on
    // cache warmth, local or remote.
    PlanService service;
    const std::string local =
        batch_report_to_json(service.run(items_for_client(c)));
    EXPECT_EQ(normalize_volatile(remote[c]), normalize_volatile(local))
        << "client " << c;
  }
  const PlanServer::Stats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, kClients * 2);
  EXPECT_EQ(stats.sessions_closed, kClients * 2);
  EXPECT_EQ(stats.open_sessions, 0u);
}

TEST(PlanServe, SurvivesDropConnectionFaultsWithZeroLostSessions) {
  // The first four accepted connections each get hard-dropped before
  // their third outbound frame — mid-session, response eaten.  The
  // client reconnects and retries; idempotent OPEN/DELTA replay means
  // the final report is still byte-identical to the serial run.
  ServerConfig config;
  config.fault_spec = "serve:drop-connection:after-frames=2:gens=4";
  PlanServer server{config};
  server.start();
  ClientConfig cc;
  cc.port = server.port();
  cc.max_reconnects = 8;
  PlanClient client(cc);
  const std::vector<BatchItem> items = items_for_client(1);
  const BatchReport report = client.run_items(items);
  server.stop();

  EXPECT_TRUE(report.all_ok());
  PlanService service;
  EXPECT_EQ(normalize_volatile(batch_report_to_json(report)),
            normalize_volatile(batch_report_to_json(service.run(items))));

  const PlanServer::Stats stats = server.stats();
  EXPECT_GE(stats.connections_dropped, 1u);
  // Zero lost sessions: every session opened was cleanly closed even
  // though connections died under it.
  EXPECT_EQ(stats.sessions_opened, stats.sessions_closed);
  EXPECT_EQ(stats.open_sessions, 0u);
}

TEST(PlanServe, DeltaScriptSessionMatchesLocalPlanSession) {
  PlanServer server{ServerConfig{}};
  server.start();
  ClientConfig cc;
  cc.port = server.port();
  PlanClient client(cc);

  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 6;
  item.backends = {"greedy", "dsatur"};
  const serve::OpenInfo info = client.open(item);
  EXPECT_EQ(info.pending, 0u);
  const std::string script = "step 1\nremove 0 0\nadd 7 7 r 2\n";
  const serve::DeltaInfo delta = client.delta_script(info.session, script);
  EXPECT_EQ(delta.step, 1u);
  const serve::ReplanOutcome remote = client.replan(info.session);
  const serve::SessionWireStats stats = client.close_session(info.session);
  EXPECT_EQ(stats.replans, 1u);
  EXPECT_EQ(stats.deltas, 1u);
  server.stop();

  // The same deployment driven through a local PlanSession.
  ScenarioInstance instance =
      ScenarioRegistry::global().build("grid", item.query.params);
  SessionConfig sc;
  sc.backends = item.backends;
  PlanSession session(std::move(instance.deployment), sc);
  const MutationTrace trace = parse_mutation_script(script);
  for (const MutationStep& step : trace.steps) session.apply(step.delta);
  const std::vector<PlanResult> local = session.replan();

  std::vector<PlanResult> remote_results;
  for (const PlanResultRow& row : remote.rows) {
    remote_results.push_back(result_from_row(row));
  }
  EXPECT_EQ(normalize_wall(plan_results_to_json(remote_results,
                                                instance.label, 1)),
            normalize_wall(plan_results_to_json(local, instance.label, 1)));
}

TEST(PlanServe, SubscribersReceiveReplanEvents) {
  PlanServer server{ServerConfig{}};
  server.start();
  ClientConfig cc;
  cc.port = server.port();
  PlanClient watcher(cc);
  PlanClient driver(cc);

  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 5;
  item.backends = {"greedy"};
  const serve::OpenInfo info = driver.open(item);
  watcher.subscribe(info.session);
  const serve::ReplanOutcome direct = driver.replan(info.session);

  serve::ReplanOutcome event;
  ASSERT_TRUE(watcher.next_event(&event, 10000));
  EXPECT_EQ(event.session, info.session);
  EXPECT_EQ(event.step, direct.step);
  ASSERT_EQ(event.rows.size(), direct.rows.size());
  for (std::size_t i = 0; i < event.rows.size(); ++i) {
    EXPECT_EQ(event.rows[i].backend, direct.rows[i].backend);
    EXPECT_EQ(event.rows[i].period, direct.rows[i].period);
    EXPECT_EQ(event.rows[i].collision_free, direct.rows[i].collision_free);
  }
  (void)driver.close_session(info.session);
  server.stop();
  EXPECT_GE(server.stats().events_pushed, 1u);
}

TEST(PlanServe, DuplicateDeltaSeqReplaysInsteadOfDoubleApplying) {
  PlanServer server{ServerConfig{}};
  server.start();
  ClientConfig cc;
  cc.port = server.port();
  PlanClient client(cc);

  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 5;
  item.backends = {"greedy"};
  const serve::OpenInfo info = client.open(item);
  const std::string delta_body =
      std::to_string(info.session) + " 0\nstep 1\nremove 0 0\n";
  const dist::WireMessage first = client.request({"DELTA", delta_body});
  ASSERT_EQ(first.verb, "OK");
  // The retry a reconnecting client would send: same seq, same script.
  const dist::WireMessage replay = client.request({"DELTA", delta_body});
  ASSERT_EQ(replay.verb, "OK");
  EXPECT_EQ(replay.body, first.body);
  // A stale/yet-unseen seq is refused outright.
  const dist::WireMessage bad = client.request(
      {"DELTA", std::to_string(info.session) + " 5\nstep 9\nremove 1 0\n"});
  EXPECT_EQ(bad.verb, "ERROR");

  // One remove happened, not two: 5x5 grid minus one sensor.
  const serve::ReplanOutcome result = client.replan(info.session);
  EXPECT_EQ(result.sensors, 24u);
  (void)client.close_session(info.session);
  server.stop();
}

TEST(PlanServe, AssignVerbServesCoordinatorStyleBatches) {
  // The --listen worker mode: the same listener answers the distributed
  // ASSIGN verb, so a coordinator-style client can drive this server as
  // a remote worker over TCP.
  PlanServer server{ServerConfig{}};
  server.start();
  ClientConfig cc;
  cc.port = server.port();
  PlanClient client(cc);
  const std::vector<BatchItem> items = items_for_client(3);
  const dist::WireMessage reply = client.request(
      {"ASSIGN", "42\n" + batch_items_to_json(items)});
  ASSERT_EQ(reply.verb, "RESULT");
  ASSERT_EQ(reply.body.substr(0, 3), "42\n");
  const BatchReport remote = parse_batch_report_json(reply.body.substr(3));
  server.stop();
  EXPECT_EQ(server.stats().assigns_served, 1u);

  PlanService service;
  EXPECT_EQ(normalize_volatile(batch_report_to_json(remote)),
            normalize_volatile(batch_report_to_json(service.run(items))));
}

TEST(PlanServe, StopIsGracefulAndIdempotent) {
  PlanServer server{ServerConfig{}};
  server.start();
  ClientConfig cc;
  cc.port = server.port();
  PlanClient client(cc);
  BatchItem item;
  item.query.scenario = "grid";
  item.query.params.n = 4;
  item.backends = {"greedy"};
  const serve::OpenInfo info = client.open(item);
  server.stop();
  server.stop();  // idempotent
  // The un-closed session is still accounted for — preserved, not lost.
  const PlanServer::Stats stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.sessions_closed, 0u);
  EXPECT_EQ(stats.open_sessions, 1u);
  EXPECT_GT(info.session, 0u);
}

}  // namespace
}  // namespace latticesched
