// The neighborhood factories, including the three Figure-2 shapes.
#include "tiling/shapes.hpp"

#include <gtest/gtest.h>

namespace latticesched {
namespace {

TEST(Shapes, ChebyshevBallSizes) {
  // (2r+1)^d points.
  EXPECT_EQ(shapes::chebyshev_ball(2, 0).size(), 1u);
  EXPECT_EQ(shapes::chebyshev_ball(2, 1).size(), 9u);   // Figure 2 left
  EXPECT_EQ(shapes::chebyshev_ball(2, 2).size(), 25u);
  EXPECT_EQ(shapes::chebyshev_ball(3, 1).size(), 27u);
  EXPECT_EQ(shapes::chebyshev_ball(1, 3).size(), 7u);
}

TEST(Shapes, L1BallSizes) {
  // 2-D l1 ball: 2r² + 2r + 1 points.
  EXPECT_EQ(shapes::l1_ball(2, 1).size(), 5u);
  EXPECT_EQ(shapes::l1_ball(2, 2).size(), 13u);
  EXPECT_EQ(shapes::l1_ball(3, 1).size(), 7u);
}

TEST(Shapes, EuclideanBallOnSquareLattice) {
  // Figure 2 middle: radius 1 on the square lattice = the plus shape.
  const Prototile b1 = shapes::euclidean_ball(Lattice::square(), 1.0);
  EXPECT_EQ(b1.size(), 5u);
  EXPECT_TRUE(b1.contains(Point{0, 0}));
  EXPECT_TRUE(b1.contains(Point{1, 0}));
  EXPECT_FALSE(b1.contains(Point{1, 1}));
  // Radius √2 picks up the diagonals: 9 points.
  EXPECT_EQ(shapes::euclidean_ball(Lattice::square(), 1.4143).size(), 9u);
  // Radius 2: 13 points (adds (±2,0),(0,±2)).
  EXPECT_EQ(shapes::euclidean_ball(Lattice::square(), 2.0).size(), 13u);
}

TEST(Shapes, EuclideanBallOnHexLattice) {
  // Radius 1 on the hexagonal lattice: center + 6 kissing vectors.
  const Prototile b = shapes::euclidean_ball(Lattice::hexagonal(), 1.0);
  EXPECT_EQ(b.size(), 7u);
  EXPECT_TRUE(b.contains(Point{1, -1}));
  EXPECT_FALSE(b.contains(Point{1, 1}));  // length √3
}

TEST(Shapes, RectangleAndOrigin) {
  const Prototile r = shapes::rectangle(3, 2);
  EXPECT_EQ(r.size(), 6u);
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{2, 1}));
  const Prototile centered = shapes::rectangle(3, 3, 1, 1);
  EXPECT_TRUE(centered.contains(Point{-1, -1}));
  EXPECT_TRUE(centered.contains(Point{1, 1}));
  EXPECT_THROW(shapes::rectangle(0, 2), std::invalid_argument);
  EXPECT_THROW(shapes::rectangle(2, 2, 5, 0), std::invalid_argument);
}

TEST(Shapes, DirectionalAntennaMatchesFigure) {
  // Figure 2 right / Figure 3: 8 cells, 2 wide, 4 tall, origin top-left;
  // the antenna radiates "south".
  const Prototile d = shapes::directional_antenna();
  EXPECT_EQ(d.size(), 8u);
  EXPECT_TRUE(d.contains(Point{0, 0}));
  EXPECT_TRUE(d.contains(Point{1, 0}));
  EXPECT_TRUE(d.contains(Point{0, -3}));
  EXPECT_TRUE(d.contains(Point{1, -3}));
  EXPECT_FALSE(d.contains(Point{0, 1}));
  EXPECT_FALSE(d.contains(Point{-1, 0}));
}

TEST(Shapes, TetrominoesAndTromino) {
  EXPECT_EQ(shapes::s_tetromino().size(), 4u);
  EXPECT_EQ(shapes::z_tetromino().size(), 4u);
  EXPECT_EQ(shapes::l_tromino().size(), 3u);
  // S and Z are genuinely different point sets.
  EXPECT_NE(shapes::s_tetromino(), shapes::z_tetromino());
  // Union of S and Z (the Theorem-2 slot set for Figure 5) has 6 points.
  PointVec u = shapes::s_tetromino().points();
  const Prototile z = shapes::z_tetromino();
  for (const Point& p : z.points()) u.push_back(p);
  EXPECT_EQ(sorted_unique(u).size(), 6u);
}

TEST(Shapes, StraightPolyomino) {
  const Prototile i5 = shapes::straight_polyomino(5);
  EXPECT_EQ(i5.size(), 5u);
  EXPECT_TRUE(i5.contains(Point{4, 0}));
  EXPECT_THROW(shapes::straight_polyomino(0), std::invalid_argument);
}

TEST(Shapes, QuadrantSector) {
  const Prototile q = shapes::quadrant_sector(2);
  EXPECT_EQ(q.size(), 9u);
  EXPECT_TRUE(q.contains(Point{2, 2}));
  EXPECT_FALSE(q.contains(Point{-1, 0}));
}

TEST(Shapes, NegativeRadiiThrow) {
  EXPECT_THROW(shapes::chebyshev_ball(2, -1), std::invalid_argument);
  EXPECT_THROW(shapes::l1_ball(2, -1), std::invalid_argument);
  EXPECT_THROW(shapes::euclidean_ball(Lattice::square(), -1.0),
               std::invalid_argument);
  EXPECT_THROW(shapes::quadrant_sector(-1), std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
