// The slot-synchronous simulator and the MAC protocols.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "baseline/coloring_schedule.hpp"
#include "baseline/tdma.hpp"
#include "core/tiling_scheduler.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

struct World {
  Prototile tile = shapes::chebyshev_ball(2, 1);
  Deployment deployment =
      Deployment::grid(Box::cube(2, 0, 5), tile);  // 36 sensors
  TilingSchedule schedule = TilingSchedule(*make_lattice_tiling(tile));
};

TEST(Simulator, TilingScheduleNeverCollides) {
  World w;
  SimConfig cfg;
  cfg.slots = 3000;
  cfg.arrival_rate = 0.2;  // heavy load
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const SimResult r = sim.run(mac);
  EXPECT_EQ(r.failed_tx, 0u);
  EXPECT_GT(r.successful_tx, 0u);
  EXPECT_DOUBLE_EQ(r.collision_rate(), 0.0);
}

TEST(Simulator, TdmaNeverCollides) {
  World w;
  SimConfig cfg;
  cfg.slots = 2000;
  cfg.arrival_rate = 0.2;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(tdma_slots(w.deployment));
  const SimResult r = sim.run(mac);
  EXPECT_EQ(r.failed_tx, 0u);
}

TEST(Simulator, ColoringScheduleNeverCollides) {
  World w;
  SimConfig cfg;
  cfg.slots = 2000;
  cfg.arrival_rate = 0.2;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(
      coloring_slots(w.deployment, ColoringHeuristic::kDsatur));
  const SimResult r = sim.run(mac);
  EXPECT_EQ(r.failed_tx, 0u);
}

TEST(Simulator, AlohaCollidesUnderLoad) {
  World w;
  SimConfig cfg;
  cfg.slots = 2000;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);
  AlohaMac mac(0.3);
  const SimResult r = sim.run(mac);
  EXPECT_GT(r.failed_tx, 0u);
  EXPECT_GT(r.collision_rate(), 0.2);
}

TEST(Simulator, CsmaBeatsAlohaOnCollisions) {
  World w;
  SimConfig cfg;
  cfg.slots = 4000;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);
  AlohaMac aloha(0.3);
  CsmaMac csma;
  const double aloha_rate = sim.run(aloha).collision_rate();
  const double csma_rate = sim.run(csma).collision_rate();
  EXPECT_LT(csma_rate, aloha_rate);
}

TEST(Simulator, SaturatedTilingThroughputApproachesCapacity) {
  // Interior sensors transmit every |N| slots; per-sensor throughput of
  // the tiling schedule under saturation ≈ 1/9 (boundary effects only
  // help: fewer listeners, no interference sources outside).
  World w;
  SimConfig cfg;
  cfg.slots = 4500;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const SimResult r = sim.run(mac);
  EXPECT_NEAR(r.per_sensor_throughput(), 1.0 / 9.0, 0.01);
  EXPECT_EQ(r.failed_tx, 0u);
}

TEST(Simulator, SaturatedTdmaThroughputIsOneOverN) {
  World w;
  SimConfig cfg;
  cfg.slots = 3600;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(tdma_slots(w.deployment));
  const SimResult r = sim.run(mac);
  EXPECT_NEAR(r.per_sensor_throughput(),
              1.0 / static_cast<double>(w.deployment.size()), 0.002);
}

TEST(Simulator, ClockDriftReintroducesCollisions) {
  // Fault injection: one sensor's clock is ahead by one slot — the
  // deterministic guarantee evaporates.
  World w;
  SimConfig cfg;
  cfg.slots = 3000;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);
  std::vector<std::int64_t> offsets(w.deployment.size(), 0);
  offsets[14] = 1;  // an interior sensor
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment), offsets);
  const SimResult r = sim.run(mac);
  EXPECT_GT(r.failed_tx, 0u);
}

TEST(Simulator, LatencyIsBoundedByPeriodUnderLightLoad) {
  World w;
  SimConfig cfg;
  cfg.slots = 5000;
  cfg.arrival_rate = 0.01;  // light load: queue mostly empty
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const SimResult r = sim.run(mac);
  ASSERT_GT(r.latency.count(), 0u);
  // A lone message waits at most one full period; brief queueing can
  // stretch stragglers, but at 10x under capacity the queue stays short.
  EXPECT_LT(r.latency.mean(), static_cast<double>(w.schedule.period()));
  EXPECT_LE(r.latency.max(), 5.0 * w.schedule.period());
}

TEST(Simulator, EnergyAccountingAddsUp) {
  World w;
  SimConfig cfg;
  cfg.slots = 100;
  cfg.saturated = true;
  cfg.tx_cost = 1.0;
  cfg.rx_cost = 0.0;
  cfg.idle_cost = 0.0;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const SimResult r = sim.run(mac);
  // With rx and idle costs zero, energy equals attempted transmissions.
  EXPECT_DOUBLE_EQ(r.energy, static_cast<double>(r.attempted_tx));
  EXPECT_GT(r.energy_per_delivery(), 0.0);
}

TEST(Simulator, QueueDropsUnderOverload) {
  World w;
  SimConfig cfg;
  cfg.slots = 4000;
  cfg.arrival_rate = 0.9;  // far above the 1/9 service rate
  cfg.queue_capacity = 4;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const SimResult r = sim.run(mac);
  EXPECT_GT(r.drops, 0u);
}

TEST(Simulator, FairnessHighForSymmetricSchedules) {
  World w;
  SimConfig cfg;
  cfg.slots = 4500;
  cfg.saturated = true;
  SlotSimulator sim(w.deployment, cfg);
  SlotScheduleMac mac(assign_slots(w.schedule, w.deployment));
  const SimResult r = sim.run(mac);
  EXPECT_GT(r.fairness(), 0.99);
}

TEST(Simulator, ResultAccountingConsistent) {
  World w;
  SimConfig cfg;
  cfg.slots = 1000;
  cfg.arrival_rate = 0.1;
  SlotSimulator sim(w.deployment, cfg);
  AlohaMac mac(0.2);
  const SimResult r = sim.run(mac);
  EXPECT_EQ(r.attempted_tx, r.successful_tx + r.failed_tx);
  EXPECT_EQ(r.sensors, w.deployment.size());
  EXPECT_EQ(r.slots, cfg.slots);
  EXPECT_LE(r.latency.count(), r.successful_tx);
}

TEST(Protocols, ValidationAndNames) {
  EXPECT_THROW(AlohaMac(0.0), std::invalid_argument);
  EXPECT_THROW(AlohaMac(1.5), std::invalid_argument);
  EXPECT_THROW(CsmaMac(0, 4), std::invalid_argument);
  EXPECT_THROW(CsmaMac(8, 4), std::invalid_argument);
  SensorSlots s;
  s.period = 0;
  s.slot = {};
  EXPECT_THROW(SlotScheduleMac{s}, std::invalid_argument);
  EXPECT_NE(AlohaMac(0.5).name().find("aloha"), std::string::npos);
  EXPECT_NE(CsmaMac().name().find("csma"), std::string::npos);
}

TEST(Protocols, ScheduleMacSizeMismatchCaught) {
  World w;
  SensorSlots s;
  s.period = 9;
  s.slot.assign(5, 0);  // wrong size for the 36-sensor deployment
  SlotScheduleMac mac(s);
  SimConfig cfg;
  cfg.slots = 1;
  SlotSimulator sim(w.deployment, cfg);
  EXPECT_THROW(sim.run(mac), std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
