// Smith Normal Form and quotient group structure.
#include "lattice/snf.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace latticesched {
namespace {

void expect_valid_snf(const IntMatrix& a) {
  const SmithDecomposition d = smith_normal_form(a);
  // U·A·V == S.
  EXPECT_EQ(d.u.mul(a).mul(d.v), d.s);
  // U and V unimodular.
  EXPECT_EQ(std::abs(d.u.det()), 1);
  EXPECT_EQ(std::abs(d.v.det()), 1);
  // S diagonal with positive, successively divisible entries.
  for (std::size_t i = 0; i < d.s.rows(); ++i) {
    for (std::size_t j = 0; j < d.s.cols(); ++j) {
      if (i != j) {
        EXPECT_EQ(d.s.at(i, j), 0);
      }
    }
    EXPECT_GT(d.s.at(i, i), 0);
    if (i > 0) {
      EXPECT_EQ(d.s.at(i, i) % d.s.at(i - 1, i - 1), 0)
          << "invariant factors must divide successively";
    }
  }
  // |det| preserved.
  std::int64_t prod = 1;
  for (std::int64_t s : d.invariants) prod *= s;
  EXPECT_EQ(prod, std::abs(a.det()));
}

TEST(Snf, IdentityAndDiagonal) {
  expect_valid_snf(IntMatrix::identity(3));
  expect_valid_snf(IntMatrix::diagonal({4, 6}));
  // diag(4,6) has invariants (2, 12), not (4, 6).
  const SmithDecomposition d =
      smith_normal_form(IntMatrix::diagonal({4, 6}));
  EXPECT_EQ(d.invariants, (std::vector<std::int64_t>{2, 12}));
}

TEST(Snf, KnownSmallCases) {
  // [[2,0],[1,1]] generates an index-2 sublattice: invariants (1, 2).
  const SmithDecomposition d = smith_normal_form(IntMatrix{{2, 0}, {1, 1}});
  EXPECT_EQ(d.invariants, (std::vector<std::int64_t>{1, 2}));
  // [[2,1],[1,2]]: det 3, invariants (1, 3).
  const SmithDecomposition e = smith_normal_form(IntMatrix{{2, 1}, {1, 2}});
  EXPECT_EQ(e.invariants, (std::vector<std::int64_t>{1, 3}));
}

TEST(Snf, RandomMatricesSatisfyInvariants) {
  Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + rng.next_below(2);  // 2 or 3
    IntMatrix m(n, n);
    do {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          m.at(r, c) = rng.next_int(-6, 6);
        }
      }
    } while (m.det() == 0);
    expect_valid_snf(m);
  }
}

TEST(Snf, NegativeEntriesAndPivotSwaps) {
  expect_valid_snf(IntMatrix{{0, -3}, {2, 5}});
  expect_valid_snf(IntMatrix{{0, 0, 1}, {0, 2, 0}, {3, 0, 0}});
}

TEST(Snf, SingularThrows) {
  EXPECT_THROW(smith_normal_form(IntMatrix{{1, 2}, {2, 4}}),
               std::domain_error);
  EXPECT_THROW(smith_normal_form(IntMatrix(2, 3)), std::invalid_argument);
}

TEST(QuotientInvariants, MatchKnownGroups) {
  // Z²/2Z² ≅ Z/2 x Z/2.
  EXPECT_EQ(quotient_invariants(Sublattice::scaled(2, 2)),
            (std::vector<std::int64_t>{2, 2}));
  // Z²/diag(1,5) ≅ Z/5 (one trivial factor dropped).
  EXPECT_EQ(quotient_invariants(Sublattice::diagonal({1, 5})),
            (std::vector<std::int64_t>{5}));
  // The index-5 perfect-code lattice gives the CYCLIC group Z/5.
  EXPECT_EQ(quotient_invariants(
                Sublattice::from_vectors({Point{1, 2}, Point{2, -1}})),
            (std::vector<std::int64_t>{5}));
  // M = Z^d: trivial quotient.
  EXPECT_TRUE(quotient_invariants(Sublattice::scaled(2, 1)).empty());
}

TEST(QuotientInvariants, OrderEqualsIndex) {
  Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    IntMatrix m(2, 2);
    do {
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
          m.at(r, c) = rng.next_int(-5, 5);
        }
      }
    } while (m.det() == 0);
    const Sublattice sub(m);
    std::int64_t order = 1;
    for (std::int64_t s : quotient_invariants(sub)) order *= s;
    EXPECT_EQ(order, sub.index());
  }
}

TEST(QuotientGroupName, Formatting) {
  EXPECT_EQ(quotient_group_name(Sublattice::scaled(2, 1)), "trivial");
  EXPECT_EQ(quotient_group_name(Sublattice::diagonal({1, 7})), "Z/7");
  EXPECT_EQ(quotient_group_name(Sublattice::scaled(2, 3)), "Z/3 x Z/3");
}

}  // namespace
}  // namespace latticesched
