#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace latticesched {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_gaussian() * 3.0 + 1.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);
}

TEST(SampleSet, PercentilesOnKnownData) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
}

TEST(SampleSet, PercentileArgumentValidation) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(SampleSet, EmptyReturnsZeros) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0}) h.add(x);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);  // 0.0, 1.9
  EXPECT_EQ(h.bin_count(1), 1u);  // 2.0
  EXPECT_EQ(h.bin_count(2), 1u);  // 5.5
  EXPECT_EQ(h.bin_count(4), 1u);  // 9.99
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, RendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

}  // namespace
}  // namespace latticesched
