// Work-stealing search invariance: the deterministic-merge contract of
// the task-tree dense engine.  Results AND node counts must be
// byte-identical to the serial engine for EVERY thread count, EVERY
// spawn depth and EVERY mask kernel — stealing order, task interleaving
// and SIMD width are invisible.  (test_parallel.cpp pins threads=1 vs
// N on the default config; this file sweeps the new axes.)
#include <gtest/gtest.h>

#include "tiling/mask_kernels.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"
#include "util/parallel.hpp"

namespace latticesched {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};
struct KernelGuard {
  ~KernelGuard() { mask_kernels::set_kernel(mask_kernels::Kernel::kAuto); }
};

bool same_tiling(const Tiling& a, const Tiling& b) {
  return a.period() == b.period() && a.placements() == b.placements() &&
         a.prototile_count() == b.prototile_count();
}

// The F-pentomino is not exact (Beauquier–Nivat), so the period sweep
// explores every subtree to exhaustion — the worst case for divergent
// node accounting.  Every (threads, spawn depth) combination must
// report the same failure with the same node total as serial.
TEST(StealingDeterminism, UnsatSweepNodesInvariantAcrossThreadsAndDepths) {
  ThreadGuard guard;
  const Prototile f(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F");
  TorusSearchConfig cfg;
  cfg.max_period_cells = 60;

  set_parallel_threads(1);
  TorusSearchStats serial_stats;
  cfg.stats = &serial_stats;
  EXPECT_FALSE(search_periodic_tiling({f}, cfg).has_value());
  EXPECT_EQ(serial_stats.subtree_tasks, 0u);
  EXPECT_EQ(serial_stats.steals, 0u);

  for (std::size_t threads : {2, 4, 8}) {
    for (std::uint32_t depth : {0u, 1u, 2u, 3u}) {
      set_parallel_threads(threads);
      TorusSearchStats stats;
      cfg.stats = &stats;
      cfg.max_spawn_depth = depth;
      EXPECT_FALSE(search_periodic_tiling({f}, cfg).has_value())
          << threads << " threads, depth " << depth;
      EXPECT_EQ(stats.nodes, serial_stats.nodes)
          << threads << " threads, depth " << depth;
      // The sweep parallelizes ACROSS tori, so the per-torus searches
      // run serially inside the pool (nested parallelism is inline).
      EXPECT_EQ(stats.subtree_tasks, 0u)
          << threads << " threads, depth " << depth;
    }
  }
}

// Full enumeration: the merged result list must equal the serial DFS
// order placement-by-placement, whatever the spawn depth.
TEST(StealingDeterminism, EnumerationIdenticalAcrossSpawnDepths) {
  ThreadGuard guard;
  const std::vector<Prototile> protos = {shapes::s_tetromino(),
                                         shapes::z_tetromino()};
  const Sublattice period = Sublattice::diagonal({4, 4});

  set_parallel_threads(1);
  TorusSearchStats serial_stats;
  TorusSearchConfig cfg;
  cfg.stats = &serial_stats;
  const auto serial = all_tilings_on_torus(protos, period, 100000, cfg);
  ASSERT_FALSE(serial.empty());

  set_parallel_threads(4);
  for (std::uint32_t depth : {0u, 1u, 2u, 3u, 4u}) {
    TorusSearchStats stats;
    cfg.stats = &stats;
    cfg.max_spawn_depth = depth;
    const auto parallel = all_tilings_on_torus(protos, period, 100000, cfg);
    ASSERT_EQ(serial.size(), parallel.size()) << "depth " << depth;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_tiling(serial[i], parallel[i]))
          << "tiling " << i << " at depth " << depth;
    }
    EXPECT_EQ(stats.nodes, serial_stats.nodes) << "depth " << depth;
    // A direct torus search does run on the task engine.
    EXPECT_GE(stats.subtree_tasks, 1u) << "depth " << depth;
  }
}

// A result limit cuts the DFS mid-tree; the cancellation rank must
// reproduce the serial cut exactly — same tilings, same node charge —
// not merely "some 5 tilings".
TEST(StealingDeterminism, ResultLimitCutMatchesSerialExactly) {
  ThreadGuard guard;
  const std::vector<Prototile> protos = {shapes::s_tetromino(),
                                         shapes::z_tetromino()};
  const Sublattice period = Sublattice::diagonal({4, 4});

  set_parallel_threads(1);
  TorusSearchStats serial_stats;
  TorusSearchConfig cfg;
  cfg.stats = &serial_stats;
  const auto serial = all_tilings_on_torus(protos, period, 5, cfg);
  ASSERT_EQ(serial.size(), 5u);

  for (std::size_t threads : {2, 8}) {
    for (std::uint32_t depth : {0u, 2u, 3u}) {
      set_parallel_threads(threads);
      TorusSearchStats stats;
      cfg.stats = &stats;
      cfg.max_spawn_depth = depth;
      const auto parallel = all_tilings_on_torus(protos, period, 5, cfg);
      ASSERT_EQ(parallel.size(), 5u) << threads << " threads, depth "
                                     << depth;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(same_tiling(serial[i], parallel[i]))
            << "tiling " << i << ", " << threads << " threads, depth "
            << depth;
      }
      EXPECT_EQ(stats.nodes, serial_stats.nodes)
          << threads << " threads, depth " << depth;
    }
  }
}

// Kernel choice (scalar vs AVX2) must be invisible to the search: same
// tilings, same nodes, and the dispatched kernel is surfaced in the
// stats.  The AVX2 leg is skipped on hosts/builds without it.
TEST(StealingDeterminism, KernelsProduceIdenticalSearches) {
  ThreadGuard thread_guard;
  KernelGuard kernel_guard;
  const std::vector<Prototile> protos = {shapes::s_tetromino(),
                                         shapes::z_tetromino()};
  const Sublattice period = Sublattice::diagonal({4, 4});

  ASSERT_TRUE(mask_kernels::set_kernel(mask_kernels::Kernel::kScalar));
  set_parallel_threads(1);
  TorusSearchStats scalar_stats;
  TorusSearchConfig cfg;
  cfg.stats = &scalar_stats;
  const auto scalar_serial = all_tilings_on_torus(protos, period, 100000, cfg);
  ASSERT_FALSE(scalar_serial.empty());
  EXPECT_STREQ(scalar_stats.kernel, "scalar");

  if (mask_kernels::avx2_ops() == nullptr) {
    GTEST_SKIP() << "AVX2 kernels unavailable on this build/host";
  }
  ASSERT_TRUE(mask_kernels::set_kernel(mask_kernels::Kernel::kAvx2));
  for (std::size_t threads : {1, 4}) {
    set_parallel_threads(threads);
    TorusSearchStats stats;
    cfg.stats = &stats;
    const auto avx2 = all_tilings_on_torus(protos, period, 100000, cfg);
    ASSERT_EQ(scalar_serial.size(), avx2.size()) << threads << " threads";
    for (std::size_t i = 0; i < scalar_serial.size(); ++i) {
      EXPECT_TRUE(same_tiling(scalar_serial[i], avx2[i]))
          << "tiling " << i << " at " << threads << " threads";
    }
    EXPECT_EQ(stats.nodes, scalar_stats.nodes) << threads << " threads";
    EXPECT_STREQ(stats.kernel, "avx2") << threads << " threads";
  }
}

}  // namespace
}  // namespace latticesched
