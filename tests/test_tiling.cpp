// The Tiling class: construction validation (T1/T2, GT1/GT2), covering
// lookups and window verification.
#include "tiling/tiling.hpp"

#include <gtest/gtest.h>

#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

Tiling square_block_tiling() {
  // 2x2 blocks tiled by 2Z x 2Z.
  return Tiling::lattice_tiling(shapes::rectangle(2, 2),
                                Sublattice::diagonal({2, 2}));
}

TEST(Tiling, LatticeTilingBasics) {
  const Tiling t = square_block_tiling();
  EXPECT_EQ(t.dim(), 2u);
  EXPECT_EQ(t.prototile_count(), 1u);
  EXPECT_EQ(t.period().index(), 4);
  EXPECT_TRUE(t.is_respectable());
}

TEST(Tiling, LatticeTilingSizeMismatchThrows) {
  EXPECT_THROW(Tiling::lattice_tiling(shapes::rectangle(2, 2),
                                      Sublattice::diagonal({2, 3})),
               std::invalid_argument);
}

TEST(Tiling, LatticeTilingIncompleteResiduesThrows) {
  // The domino does not tile with 1Z x 2Z... wait, |N|=2, index=2: the
  // horizontal domino {(0,0),(1,0)} is NOT a residue system mod
  // diag(1,2) (both elements reduce to (0,0)).
  EXPECT_THROW(Tiling::lattice_tiling(shapes::straight_polyomino(2),
                                      Sublattice::diagonal({1, 2})),
               std::invalid_argument);
  // It IS one mod diag(2,1).
  EXPECT_NO_THROW(Tiling::lattice_tiling(shapes::straight_polyomino(2),
                                         Sublattice::diagonal({2, 1})));
}

TEST(Tiling, CoveringIsConsistent) {
  const Tiling t = square_block_tiling();
  Box::centered(2, 6).for_each([&](const Point& p) {
    const Covering c = t.covering(p);
    EXPECT_EQ(c.prototile, 0u);
    // p = translate + element.
    const Point elem = t.prototile(c.prototile).element(c.element_index);
    EXPECT_EQ(c.translate + elem, p);
    // The translate must be a placement (congruent to a canonical one).
    EXPECT_TRUE(t.period().congruent(c.translate,
                                     t.placements().front().first));
  });
}

TEST(Tiling, PlacementsInBox) {
  const Tiling t = square_block_tiling();
  const auto placements = t.placements_in(Box::cube(2, 0, 3));
  // Translates at (0,0), (0,2), (2,0), (2,2).
  EXPECT_EQ(placements.size(), 4u);
  for (const auto& [translate, proto] : placements) {
    EXPECT_EQ(proto, 0u);
    EXPECT_EQ(translate[0] % 2, 0);
    EXPECT_EQ(translate[1] % 2, 0);
  }
}

TEST(Tiling, VerifyWindowAcceptsValidTiling) {
  const Tiling t = square_block_tiling();
  std::string err;
  EXPECT_TRUE(t.verify_window(Box::centered(2, 10), &err)) << err;
}

TEST(Tiling, PeriodicConstructionRejectsOverlap) {
  // Two dominoes placed to overlap on a 2x2 torus.
  std::vector<Prototile> protos = {shapes::straight_polyomino(2)};
  EXPECT_THROW(
      Tiling::periodic(protos, Sublattice::diagonal({2, 2}),
                       {{Point{0, 0}, 0}, {Point{1, 0}, 0}}),
      std::invalid_argument);
}

TEST(Tiling, PeriodicConstructionRejectsIncompleteCover) {
  std::vector<Prototile> protos = {shapes::straight_polyomino(2)};
  EXPECT_THROW(Tiling::periodic(protos, Sublattice::diagonal({2, 2}),
                                {{Point{0, 0}, 0}}),
               std::invalid_argument);
}

TEST(Tiling, PeriodicConstructionRejectsDuplicateTranslates) {
  std::vector<Prototile> protos = {shapes::straight_polyomino(2)};
  // Same translate class twice (second one shifted by a full period).
  EXPECT_THROW(
      Tiling::periodic(protos, Sublattice::diagonal({2, 2}),
                       {{Point{0, 0}, 0}, {Point{2, 0}, 0}}),
      std::invalid_argument);
}

TEST(Tiling, PeriodicConstructionRejectsBadPrototileIndex) {
  std::vector<Prototile> protos = {shapes::straight_polyomino(2)};
  EXPECT_THROW(Tiling::periodic(protos, Sublattice::diagonal({2, 1}),
                                {{Point{0, 0}, 7}}),
               std::invalid_argument);
}

TEST(Tiling, TwoPrototilePeriodicTiling) {
  // Stripe tiling: dominoes in even rows starting at even x, singletons
  // elsewhere... simplest: vertical domino + two single cells on a 2x2
  // torus.
  std::vector<Prototile> protos = {
      Prototile::from_ascii({"X", "O"}, "v-domino"),
      Prototile({Point{0, 0}}, "dot")};
  const Tiling t =
      Tiling::periodic(protos, Sublattice::diagonal({2, 2}),
                       {{Point{0, 0}, 0}, {Point{1, 0}, 1}, {Point{1, 1}, 1}});
  EXPECT_EQ(t.prototile_count(), 2u);
  std::string err;
  EXPECT_TRUE(t.verify_window(Box::centered(2, 6), &err)) << err;
  // Respectable: the domino contains the dot's single point.
  ASSERT_TRUE(t.respectable_prototile().has_value());
  EXPECT_EQ(*t.respectable_prototile(), 0u);
  // Covering of (1,0) is the dot; covering of (0,1) is the domino's top.
  EXPECT_EQ(t.covering(Point{1, 0}).prototile, 1u);
  EXPECT_EQ(t.covering(Point{0, 1}).prototile, 0u);
  EXPECT_EQ(t.covering(Point{0, 1}).translate, (Point{0, 0}));
}

TEST(Tiling, NonRespectableDetected) {
  // S and Z tetrominoes: neither contains the other.
  std::vector<Prototile> protos = {shapes::s_tetromino(),
                                   shapes::z_tetromino()};
  // Build any mixed tiling on a 4x4 torus via explicit placements is
  // fiddly; instead verify respectability logic directly on a fake
  // single-coverage arrangement: use the respectable_prototile helper
  // through a real search in test_torus_search.  Here check the pure
  // containment logic:
  EXPECT_FALSE(protos[0].contains_tile(protos[1]));
  EXPECT_FALSE(protos[1].contains_tile(protos[0]));
}

TEST(Tiling, SkewedPeriodLattice) {
  // The plus-pentomino tiles with the index-5 "perfect code" lattice.
  const Sublattice code = Sublattice::from_vectors({Point{1, 2},
                                                    Point{2, -1}});
  const Tiling t = Tiling::lattice_tiling(shapes::l1_ball(2, 1), code);
  std::string err;
  EXPECT_TRUE(t.verify_window(Box::centered(2, 8), &err)) << err;
  // Every point's covering translate differs from the point by a ball
  // element.
  Box::centered(2, 4).for_each([&](const Point& p) {
    const Covering c = t.covering(p);
    EXPECT_LE((p - c.translate).norm1(), 1);
  });
}

}  // namespace
}  // namespace latticesched
