// Persistent TilingCache tests: disk round trips (successes, cached
// failures, explicit-torus keys), warm-start accounting (a disk load is
// a hit, never a miss), format versioning, and corrupt-entry tolerance
// — a truncated, garbage, or bit-flipped (checksum-mismatching) file is
// skipped and recomputed, never a crash, never a wrong answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/tiling_cache.hpp"
#include "test_helpers.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

namespace fs = std::filesystem;
using test_helpers::TempDir;

std::vector<fs::path> entry_files(const std::string& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".entry") files.push_back(entry.path());
  }
  return files;
}

void expect_same_tiling(const Tiling& a, const Tiling& b) {
  EXPECT_EQ(a.period().basis(), b.period().basis());
  EXPECT_EQ(a.placements(), b.placements());
}

TEST(TilingCachePersist, WarmStartsAcrossCacheInstances) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};

  TilingCache first;
  first.set_persist_dir(dir.path);
  const auto cold = first.find_or_search(tiles);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(first.stats().misses, 1u);
  EXPECT_EQ(first.stats().disk_hits, 0u);
  EXPECT_EQ(entry_files(dir.path).size(), 1u);

  // A brand-new cache (a fresh process, conceptually) must serve the
  // same search from disk: zero misses, an identical tiling.
  TilingCache second;
  second.set_persist_dir(dir.path);
  const auto warm = second.find_or_search(tiles);
  ASSERT_TRUE(warm.has_value());
  expect_same_tiling(*warm, *cold);
  EXPECT_EQ(second.stats().misses, 0u);
  EXPECT_EQ(second.stats().hits, 1u);
  EXPECT_EQ(second.stats().disk_hits, 1u);

  // Once loaded it lives in memory: the next lookup never touches disk.
  (void)second.find_or_search(tiles);
  EXPECT_EQ(second.stats().hits, 2u);
  EXPECT_EQ(second.stats().disk_hits, 1u);
}

TEST(TilingCachePersist, PersistsSearchFailures) {
  TempDir dir;
  // The F-pentomino admits no tiling within a 40-cell period budget and
  // the search completes well under the node budget, so the failure is
  // cacheable (a budget-truncated failure would not be).
  const std::vector<Prototile> tiles = {
      Prototile(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F")};
  TorusSearchConfig config;
  config.max_period_cells = 40;

  TilingCache first;
  first.set_persist_dir(dir.path);
  EXPECT_FALSE(first.find_or_search(tiles, config).has_value());
  EXPECT_EQ(first.stats().misses, 1u);
  ASSERT_EQ(entry_files(dir.path).size(), 1u);

  TilingCache second;
  second.set_persist_dir(dir.path);
  EXPECT_FALSE(second.find_or_search(tiles, config).has_value());
  EXPECT_EQ(second.stats().misses, 0u);
  EXPECT_EQ(second.stats().disk_hits, 1u);
}

TEST(TilingCachePersist, ExplicitTorusKeysRoundTrip) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  const Sublattice period = Sublattice::diagonal({3, 3});

  TilingCache first;
  first.set_persist_dir(dir.path);
  const auto cold = first.find_or_search_on_torus(tiles, period, {});
  ASSERT_TRUE(cold.has_value());

  TilingCache second;
  second.set_persist_dir(dir.path);
  const auto warm = second.find_or_search_on_torus(tiles, period, {});
  ASSERT_TRUE(warm.has_value());
  expect_same_tiling(*warm, *cold);
  EXPECT_EQ(second.stats().disk_hits, 1u);

  // The diagonal-sweep key is distinct from the explicit-torus key even
  // for the same prototiles: loading one must not satisfy the other.
  EXPECT_EQ(second.find_or_search(tiles).has_value(), true);
  EXPECT_EQ(second.stats().misses, 1u);
}

TEST(TilingCachePersist, LoadedTilingKeepsCallerPrototileNames) {
  TempDir dir;
  const std::vector<Prototile> tiles = {
      Prototile(shapes::chebyshev_ball(2, 1).points(), "my-ball")};
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  const auto warm = cache.find_or_search(tiles);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->prototile(0).name(), "my-ball");
}

TEST(TilingCachePersist, CorruptEntriesAreSkippedAndRepaired) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  std::optional<Tiling> cold;
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    cold = cache.find_or_search(tiles);
    ASSERT_TRUE(cold.has_value());
  }

  for (const char* corruption : {"garbage\n", ""}) {
    // Garbage content and a zero-byte truncation both downgrade to a
    // recompute-with-warning — never a crash, never a wrong answer.
    for (const fs::path& file : entry_files(dir.path)) {
      std::ofstream os(file, std::ios::trunc);
      os << corruption;
    }
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    const auto recomputed = cache.find_or_search(tiles);
    ASSERT_TRUE(recomputed.has_value());
    expect_same_tiling(*recomputed, *cold);
    EXPECT_EQ(cache.stats().misses, 1u) << "corrupt entry must be a miss";
    EXPECT_EQ(cache.stats().disk_hits, 0u);
  }

  // The recompute republished a good entry.
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

TEST(TilingCachePersist, TruncatedEntryIsSkipped) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  }
  // Chop every entry in half: valid header, missing tail.
  for (const fs::path& file : entry_files(dir.path)) {
    std::ifstream is(file);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string full = buffer.str();
    is.close();
    std::ofstream os(file, std::ios::trunc);
    os << full.substr(0, full.size() / 2);
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TilingCachePersist, BitFlipIsDetectedByChecksumAndEvicted) {
  // Silent corruption — a single flipped byte in an otherwise
  // well-formed entry — must be caught by the FNV-1a checksum line:
  // the entry is evicted and recomputed (counted in
  // Stats::checksum_failures), never served as a wrong answer.
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  std::optional<Tiling> cold;
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    cold = cache.find_or_search(tiles);
    ASSERT_TRUE(cold.has_value());
    EXPECT_EQ(cache.stats().checksum_failures, 0u);
  }
  ASSERT_EQ(entry_files(dir.path).size(), 1u);
  const fs::path file = entry_files(dir.path).front();
  {
    std::ifstream is(file);
    std::stringstream buffer;
    buffer << is.rdbuf();
    std::string content = buffer.str();
    is.close();
    // Flip one mid-body byte, past the magic/version line so the
    // corruption reaches checksum verification, not the version skip.
    content[content.size() / 2] =
        static_cast<char>(content[content.size() / 2] ^ 0x1);
    std::ofstream os(file, std::ios::trunc | std::ios::binary);
    os << content;
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  const auto recomputed = cache.find_or_search(tiles);
  ASSERT_TRUE(recomputed.has_value());
  expect_same_tiling(*recomputed, *cold);
  EXPECT_EQ(cache.stats().checksum_failures, 1u);
  EXPECT_EQ(cache.stats().misses, 1u) << "a bad checksum is a miss";
  EXPECT_EQ(cache.stats().disk_hits, 0u);

  // The recompute republished a good (checksummed) entry.
  TilingCache fresh;
  fresh.set_persist_dir(dir.path);
  ASSERT_TRUE(fresh.find_or_search(tiles).has_value());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
  EXPECT_EQ(fresh.stats().checksum_failures, 0u);
}

TEST(TilingCachePersist, WriteCorruptionHookFaultsAreCaughtOnLoad) {
  // End-to-end fault injection on the write path: a hook (the seam the
  // chaos framework's cache:corrupt-write action uses) flips a byte of
  // the serialized entry AFTER the checksum is computed, so the
  // published file is internally inconsistent — and the next process
  // must detect exactly that.
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    cache.set_write_corruption_hook([](std::string& content) {
      content[content.size() / 2] =
          static_cast<char>(content[content.size() / 2] ^ 0x4);
    });
    ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  }
  TilingCache cache;  // no hook: the honest reader
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  EXPECT_EQ(cache.stats().checksum_failures, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);

  // The honest recompute healed the directory.
  TilingCache fresh;
  fresh.set_persist_dir(dir.path);
  ASSERT_TRUE(fresh.find_or_search(tiles).has_value());
  EXPECT_EQ(fresh.stats().checksum_failures, 0u);
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
}

TEST(TilingCachePersist, StaleFormatVersionIsSkipped) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  }
  for (const fs::path& file : entry_files(dir.path)) {
    std::ifstream is(file);
    std::stringstream buffer;
    buffer << is.rdbuf();
    std::string content = buffer.str();
    is.close();
    const std::string expect_header =
        "latticesched-tiling-cache " +
        std::to_string(TilingCache::kDiskFormatVersion);
    ASSERT_EQ(content.rfind(expect_header, 0), 0u) << content;
    content.replace(0, expect_header.size(),
                    "latticesched-tiling-cache 999");
    std::ofstream os(file, std::ios::trunc);
    os << content;
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  EXPECT_EQ(cache.stats().misses, 1u) << "future version must be skipped";
  EXPECT_EQ(cache.stats().disk_hits, 0u);
}

TEST(TilingCachePersist, UnrelatedFilesInDirAreIgnored) {
  TempDir dir;
  {
    std::ofstream os(dir.path + "/README.txt");
    os << "not a cache entry\n";
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(
      cache.find_or_search({shapes::chebyshev_ball(2, 1)}).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TilingCachePersist, UnwritableDirThrows) {
  TilingCache cache;
  EXPECT_THROW(cache.set_persist_dir("/proc/definitely/not/writable"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Cache-dir eviction (sweep_persist_dir)
// ---------------------------------------------------------------------------

/// Populates `dir` with one entry per radius and returns the files in
/// RADII order (mtimes are set explicitly — oldest first — so LRU
/// order is deterministic regardless of how fast the searches run).
std::vector<fs::path> populate_entries(const std::string& dir,
                                       const std::vector<std::int64_t>& radii) {
  TilingCache cache;
  cache.set_persist_dir(dir);
  std::vector<fs::path> files;
  for (std::int64_t r : radii) {
    EXPECT_TRUE(
        cache.find_or_search({shapes::chebyshev_ball(2, r)}).has_value());
    // The one new file since the previous search is radius r's entry.
    for (const fs::path& file : entry_files(dir)) {
      if (std::find(files.begin(), files.end(), file) == files.end()) {
        files.push_back(file);
        break;
      }
    }
  }
  EXPECT_EQ(files.size(), radii.size());
  const auto base = fs::file_time_type::clock::now();
  for (std::size_t i = 0; i < files.size(); ++i) {
    fs::last_write_time(files[i],
                        base - std::chrono::hours(files.size() - i));
  }
  return files;
}

TEST(TilingCachePersist, SweepUnderBudgetKeepsEverything) {
  TempDir dir;
  populate_entries(dir.path, {1, 2, 3});
  const TilingCache::SweepStats stats =
      TilingCache::sweep_persist_dir(dir.path, 64u << 20);
  EXPECT_EQ(stats.scanned, 3u);
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_EQ(stats.bytes_before, stats.bytes_after);
  EXPECT_EQ(entry_files(dir.path).size(), 3u);
}

TEST(TilingCachePersist, SweepEvictsOldestEntriesFirst) {
  TempDir dir;
  const std::vector<fs::path> files =
      populate_entries(dir.path, {1, 2, 3});
  // Cap at the size of the newest file alone: the two older entries
  // must go, the newest must survive.
  const std::uint64_t newest_bytes =
      static_cast<std::uint64_t>(fs::file_size(files.back()));
  const TilingCache::SweepStats stats =
      TilingCache::sweep_persist_dir(dir.path, newest_bytes);
  EXPECT_EQ(stats.scanned, 3u);
  EXPECT_EQ(stats.removed, 2u);
  EXPECT_EQ(stats.corrupt_removed, 0u);
  EXPECT_LE(stats.bytes_after, newest_bytes);
  const std::vector<fs::path> left = entry_files(dir.path);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left.front(), files.back());

  // The surviving entry still loads; the evicted keys recompute.
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(
      cache.find_or_search({shapes::chebyshev_ball(2, 3)}).has_value());
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  ASSERT_TRUE(
      cache.find_or_search({shapes::chebyshev_ball(2, 1)}).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TilingCachePersist, SweepEvictsCorruptEntriesBeforeValidOnes) {
  TempDir dir;
  const std::vector<fs::path> files =
      populate_entries(dir.path, {1, 2});
  // A garbage entry and a truncated one, both NEWER than the valid
  // entries — mtime alone would keep them.
  {
    std::ofstream os(dir.path + "/tc_00000000deadbeef.entry");
    os << "not a cache entry at all\n";
  }
  {
    std::ifstream is(files.front());
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string full = buffer.str();
    std::ofstream os(dir.path + "/tc_00000000cafef00d.entry");
    os << full.substr(0, full.size() / 2);
  }
  // Generous budget: nothing valid needs to go, corrupt files go anyway.
  const TilingCache::SweepStats stats =
      TilingCache::sweep_persist_dir(dir.path, 64u << 20);
  EXPECT_EQ(stats.scanned, 4u);
  EXPECT_EQ(stats.removed, 2u);
  EXPECT_EQ(stats.corrupt_removed, 2u);
  std::vector<fs::path> left = entry_files(dir.path);
  std::sort(left.begin(), left.end());
  EXPECT_EQ(left, files);

  // Tight budget: corrupt first, THEN oldest valid.
  {
    std::ofstream os(dir.path + "/tc_00000000deadbeef.entry");
    os << "garbage again\n";
  }
  const TilingCache::SweepStats tight =
      TilingCache::sweep_persist_dir(
          dir.path, static_cast<std::uint64_t>(fs::file_size(files.back())));
  EXPECT_EQ(tight.corrupt_removed, 1u);
  EXPECT_GE(tight.removed, 2u);
  const std::vector<fs::path> survivors = entry_files(dir.path);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors.front(), files.back());
}

TEST(TilingCachePersist, SweepInstanceFormUsesThePersistDir) {
  TempDir dir;
  TilingCache cache;
  // Persistence off: a sweep is a no-op with empty stats.
  const TilingCache::SweepStats off = cache.sweep_persist_dir(0);
  EXPECT_EQ(off.scanned, 0u);
  EXPECT_EQ(off.removed, 0u);

  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(
      cache.find_or_search({shapes::chebyshev_ball(2, 1)}).has_value());
  const TilingCache::SweepStats wipe = cache.sweep_persist_dir(0);
  EXPECT_EQ(wipe.scanned, 1u);
  EXPECT_EQ(wipe.removed, 1u);
  EXPECT_EQ(wipe.bytes_after, 0u);
  EXPECT_TRUE(entry_files(dir.path).empty());
}

}  // namespace
}  // namespace latticesched
