// Persistent TilingCache tests: disk round trips (successes, cached
// failures, explicit-torus keys), warm-start accounting (a disk load is
// a hit, never a miss), format versioning, and corrupt-entry tolerance
// — a truncated or garbage file is skipped and recomputed, never a
// crash.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/tiling_cache.hpp"
#include "test_helpers.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

namespace fs = std::filesystem;
using test_helpers::TempDir;

std::vector<fs::path> entry_files(const std::string& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".entry") files.push_back(entry.path());
  }
  return files;
}

void expect_same_tiling(const Tiling& a, const Tiling& b) {
  EXPECT_EQ(a.period().basis(), b.period().basis());
  EXPECT_EQ(a.placements(), b.placements());
}

TEST(TilingCachePersist, WarmStartsAcrossCacheInstances) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};

  TilingCache first;
  first.set_persist_dir(dir.path);
  const auto cold = first.find_or_search(tiles);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(first.stats().misses, 1u);
  EXPECT_EQ(first.stats().disk_hits, 0u);
  EXPECT_EQ(entry_files(dir.path).size(), 1u);

  // A brand-new cache (a fresh process, conceptually) must serve the
  // same search from disk: zero misses, an identical tiling.
  TilingCache second;
  second.set_persist_dir(dir.path);
  const auto warm = second.find_or_search(tiles);
  ASSERT_TRUE(warm.has_value());
  expect_same_tiling(*warm, *cold);
  EXPECT_EQ(second.stats().misses, 0u);
  EXPECT_EQ(second.stats().hits, 1u);
  EXPECT_EQ(second.stats().disk_hits, 1u);

  // Once loaded it lives in memory: the next lookup never touches disk.
  (void)second.find_or_search(tiles);
  EXPECT_EQ(second.stats().hits, 2u);
  EXPECT_EQ(second.stats().disk_hits, 1u);
}

TEST(TilingCachePersist, PersistsSearchFailures) {
  TempDir dir;
  // The F-pentomino admits no tiling within a 40-cell period budget and
  // the search completes well under the node budget, so the failure is
  // cacheable (a budget-truncated failure would not be).
  const std::vector<Prototile> tiles = {
      Prototile(PointVec{{0, 0}, {1, 0}, {-1, 1}, {0, 1}, {0, 2}}, "F")};
  TorusSearchConfig config;
  config.max_period_cells = 40;

  TilingCache first;
  first.set_persist_dir(dir.path);
  EXPECT_FALSE(first.find_or_search(tiles, config).has_value());
  EXPECT_EQ(first.stats().misses, 1u);
  ASSERT_EQ(entry_files(dir.path).size(), 1u);

  TilingCache second;
  second.set_persist_dir(dir.path);
  EXPECT_FALSE(second.find_or_search(tiles, config).has_value());
  EXPECT_EQ(second.stats().misses, 0u);
  EXPECT_EQ(second.stats().disk_hits, 1u);
}

TEST(TilingCachePersist, ExplicitTorusKeysRoundTrip) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  const Sublattice period = Sublattice::diagonal({3, 3});

  TilingCache first;
  first.set_persist_dir(dir.path);
  const auto cold = first.find_or_search_on_torus(tiles, period, {});
  ASSERT_TRUE(cold.has_value());

  TilingCache second;
  second.set_persist_dir(dir.path);
  const auto warm = second.find_or_search_on_torus(tiles, period, {});
  ASSERT_TRUE(warm.has_value());
  expect_same_tiling(*warm, *cold);
  EXPECT_EQ(second.stats().disk_hits, 1u);

  // The diagonal-sweep key is distinct from the explicit-torus key even
  // for the same prototiles: loading one must not satisfy the other.
  EXPECT_EQ(second.find_or_search(tiles).has_value(), true);
  EXPECT_EQ(second.stats().misses, 1u);
}

TEST(TilingCachePersist, LoadedTilingKeepsCallerPrototileNames) {
  TempDir dir;
  const std::vector<Prototile> tiles = {
      Prototile(shapes::chebyshev_ball(2, 1).points(), "my-ball")};
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  const auto warm = cache.find_or_search(tiles);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->prototile(0).name(), "my-ball");
}

TEST(TilingCachePersist, CorruptEntriesAreSkippedAndRepaired) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  std::optional<Tiling> cold;
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    cold = cache.find_or_search(tiles);
    ASSERT_TRUE(cold.has_value());
  }

  for (const char* corruption : {"garbage\n", ""}) {
    // Garbage content and a zero-byte truncation both downgrade to a
    // recompute-with-warning — never a crash, never a wrong answer.
    for (const fs::path& file : entry_files(dir.path)) {
      std::ofstream os(file, std::ios::trunc);
      os << corruption;
    }
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    const auto recomputed = cache.find_or_search(tiles);
    ASSERT_TRUE(recomputed.has_value());
    expect_same_tiling(*recomputed, *cold);
    EXPECT_EQ(cache.stats().misses, 1u) << "corrupt entry must be a miss";
    EXPECT_EQ(cache.stats().disk_hits, 0u);
  }

  // The recompute republished a good entry.
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

TEST(TilingCachePersist, TruncatedEntryIsSkipped) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  }
  // Chop every entry in half: valid header, missing tail.
  for (const fs::path& file : entry_files(dir.path)) {
    std::ifstream is(file);
    std::stringstream buffer;
    buffer << is.rdbuf();
    const std::string full = buffer.str();
    is.close();
    std::ofstream os(file, std::ios::trunc);
    os << full.substr(0, full.size() / 2);
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TilingCachePersist, StaleFormatVersionIsSkipped) {
  TempDir dir;
  const std::vector<Prototile> tiles = {shapes::chebyshev_ball(2, 1)};
  {
    TilingCache cache;
    cache.set_persist_dir(dir.path);
    ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  }
  for (const fs::path& file : entry_files(dir.path)) {
    std::ifstream is(file);
    std::stringstream buffer;
    buffer << is.rdbuf();
    std::string content = buffer.str();
    is.close();
    const std::string expect_header =
        "latticesched-tiling-cache " +
        std::to_string(TilingCache::kDiskFormatVersion);
    ASSERT_EQ(content.rfind(expect_header, 0), 0u) << content;
    content.replace(0, expect_header.size(),
                    "latticesched-tiling-cache 999");
    std::ofstream os(file, std::ios::trunc);
    os << content;
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(cache.find_or_search(tiles).has_value());
  EXPECT_EQ(cache.stats().misses, 1u) << "future version must be skipped";
  EXPECT_EQ(cache.stats().disk_hits, 0u);
}

TEST(TilingCachePersist, UnrelatedFilesInDirAreIgnored) {
  TempDir dir;
  {
    std::ofstream os(dir.path + "/README.txt");
    os << "not a cache entry\n";
  }
  TilingCache cache;
  cache.set_persist_dir(dir.path);
  ASSERT_TRUE(
      cache.find_or_search({shapes::chebyshev_ball(2, 1)}).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TilingCachePersist, UnwritableDirThrows) {
  TilingCache cache;
  EXPECT_THROW(cache.set_persist_dir("/proc/definitely/not/writable"),
               std::runtime_error);
}

}  // namespace
}  // namespace latticesched
