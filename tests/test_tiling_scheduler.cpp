// Theorem 1 / Theorem 2 schedules: construction, collision-freedom, slot
// counts, optimality flags, and the Figure-3 property that each slot's
// senders' neighborhoods re-tile the lattice.
#include "core/tiling_scheduler.hpp"

#include <set>

#include <gtest/gtest.h>

#include "core/collision.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"

namespace latticesched {
namespace {

TilingSchedule schedule_for(const Prototile& tile) {
  auto tiling = make_lattice_tiling(tile);
  if (!tiling.has_value()) throw std::runtime_error("no tiling found");
  return TilingSchedule(std::move(*tiling));
}

TEST(TilingSchedule, Theorem1SlotCounts) {
  // m = |N| for each of the paper's Figure-2 neighborhoods.
  EXPECT_EQ(schedule_for(shapes::chebyshev_ball(2, 1)).period(), 9u);
  EXPECT_EQ(
      schedule_for(shapes::euclidean_ball(Lattice::square(), 1.0)).period(),
      5u);
  EXPECT_EQ(schedule_for(shapes::directional_antenna()).period(), 8u);
}

TEST(TilingSchedule, SlotsAreWithinPeriod) {
  const TilingSchedule s = schedule_for(shapes::chebyshev_ball(2, 1));
  Box::centered(2, 8).for_each([&](const Point& p) {
    EXPECT_LT(s.slot_of(p), s.period());
  });
}

TEST(TilingSchedule, SameTileGetsAllSlots) {
  const TilingSchedule s = schedule_for(shapes::directional_antenna());
  // Within one tile (translate t), the 8 sensors get 8 distinct slots.
  const Covering c = s.tiling().covering(Point{0, 0});
  std::set<std::uint32_t> slots;
  for (const Point& n : s.tiling().prototile(0).points()) {
    slots.insert(s.slot_of(c.translate + n));
  }
  EXPECT_EQ(slots.size(), 8u);
}

TEST(TilingSchedule, MaySendMatchesSlots) {
  const TilingSchedule s = schedule_for(shapes::rectangle(2, 2));
  const Point p{1, 1};
  const std::uint32_t k = s.slot_of(p);
  for (std::uint64_t t = 0; t < 12; ++t) {
    EXPECT_EQ(s.may_send(p, t), t % s.period() == k);
  }
}

TEST(TilingSchedule, CollisionFreeOnWindows) {
  for (const Prototile& tile :
       {shapes::chebyshev_ball(2, 1),
        shapes::euclidean_ball(Lattice::square(), 1.0),
        shapes::directional_antenna(), shapes::s_tetromino(),
        shapes::l1_ball(2, 2), shapes::chebyshev_ball(2, 2)}) {
    const TilingSchedule s = schedule_for(tile);
    const Deployment d = Deployment::grid(Box::centered(2, 7), tile);
    const CollisionReport r = check_collision_free(d, s);
    EXPECT_TRUE(r.collision_free) << tile.name() << ": " << r.to_string();
  }
}

TEST(TilingSchedule, OptimalityFlagsForRespectableTilings) {
  const TilingSchedule s = schedule_for(shapes::chebyshev_ball(2, 1));
  EXPECT_EQ(s.lower_bound_slots(), 9u);
  EXPECT_TRUE(s.optimal());
}

TEST(TilingSchedule, Figure3SlotClassesRetileTheLattice) {
  // "Considering the neighborhoods of all sensors broadcasting during
  // time slot 2 one obtains once again a tiling."
  const TilingSchedule s = schedule_for(shapes::directional_antenna());
  const Box inner = Box::centered(2, 6);
  const Box outer = inner.expanded(6);
  for (std::uint32_t slot = 0; slot < s.period(); ++slot) {
    const PointVec senders = s.senders_in_slot(slot, outer);
    PointMap<int> coverage;
    for (const Point& t : senders) {
      for (const Point& p : s.tiling().prototile(0).translated(t)) {
        ++coverage[p];
      }
    }
    inner.for_each([&](const Point& p) {
      const auto it = coverage.find(p);
      EXPECT_TRUE(it != coverage.end() && it->second == 1)
          << "slot " << slot << " does not tile at " << p;
    });
  }
}

TEST(TilingSchedule, Theorem2TwoPrototileSchedule) {
  // Respectable pair: vertical domino ⊃ single cell.
  std::vector<Prototile> protos = {
      Prototile::from_ascii({"X", "O"}, "v-domino"),
      Prototile({Point{0, 0}}, "dot")};
  const Tiling tiling =
      Tiling::periodic(protos, Sublattice::diagonal({2, 2}),
                       {{Point{0, 0}, 0}, {Point{1, 0}, 1}, {Point{1, 1}, 1}});
  const TilingSchedule s((Tiling(tiling)));
  // Union N = {(0,0),(0,1)}: two slots.
  EXPECT_EQ(s.period(), 2u);
  EXPECT_TRUE(s.optimal());
  // Collision-free under deployment rule D1.
  const Deployment d = Deployment::from_tiling(tiling, Box::centered(2, 6));
  const CollisionReport r = check_collision_free(d, s);
  EXPECT_TRUE(r.collision_free) << r.to_string();
}

TEST(TilingSchedule, DescriptionMentionsStructure) {
  const TilingSchedule s = schedule_for(shapes::rectangle(2, 2));
  EXPECT_NE(s.description().find("m=4"), std::string::npos);
  EXPECT_NE(s.description().find("respectable"), std::string::npos);
}

TEST(TilingSchedule, UnionPointsSortedAndComplete) {
  const TilingSchedule s = schedule_for(shapes::s_tetromino());
  const PointVec& u = s.union_points();
  EXPECT_EQ(u.size(), 4u);
  EXPECT_TRUE(std::is_sorted(u.begin(), u.end()));
}

// Parameterized sweep: Theorem 1 for growing Chebyshev radii.
class Theorem1Sweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Theorem1Sweep, ChebyshevBallScheduleIsOptimalAndCollisionFree) {
  const std::int64_t r = GetParam();
  const Prototile ball = shapes::chebyshev_ball(2, r);
  const TilingSchedule s = schedule_for(ball);
  const auto expected =
      static_cast<std::uint32_t>((2 * r + 1) * (2 * r + 1));
  EXPECT_EQ(s.period(), expected);
  EXPECT_TRUE(s.optimal());
  const Deployment d = Deployment::grid(Box::centered(2, 2 * r + 3), ball);
  EXPECT_TRUE(check_collision_free(d, s).collision_free);
}

INSTANTIATE_TEST_SUITE_P(Radii, Theorem1Sweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace latticesched
