// Lattice-tiling search (HNF enumeration) and torus exact-cover search.
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "tiling/lattice_tiling_search.hpp"
#include "tiling/shapes.hpp"
#include "tiling/torus_search.hpp"

namespace latticesched {
namespace {

TEST(LatticeTilingSearch, ChebyshevBallTilesByScaledLattice) {
  const Prototile ball = shapes::chebyshev_ball(2, 1);
  EXPECT_TRUE(tiles_by_sublattice(ball, Sublattice::diagonal({3, 3})));
  EXPECT_FALSE(tiles_by_sublattice(ball, Sublattice::diagonal({9, 1})));
  const auto found = find_lattice_tiling(ball);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->index(), 9);
}

TEST(LatticeTilingSearch, PlusPentominoPerfectCode) {
  const auto found = find_lattice_tiling(shapes::l1_ball(2, 1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->index(), 5);
  // The known perfect-code lattice must be among all solutions.
  const Sublattice code =
      Sublattice::from_vectors({Point{1, 2}, Point{2, -1}});
  bool seen = false;
  for (const Sublattice& m : all_lattice_tilings(shapes::l1_ball(2, 1))) {
    if (m == code) seen = true;
  }
  EXPECT_TRUE(seen);
}

TEST(LatticeTilingSearch, DirectionalAntennaTiles) {
  const auto t = make_lattice_tiling(shapes::directional_antenna());
  ASSERT_TRUE(t.has_value());
  std::string err;
  EXPECT_TRUE(t->verify_window(Box::centered(2, 10), &err)) << err;
}

TEST(LatticeTilingSearch, DominoHasTwoLatticeTilings) {
  // Horizontal domino: index-2 sublattices are diag(2,1), diag(1,2), and
  // the skew [[2,0],[1,1]]-style ones; exactly those with distinct
  // residues qualify.
  const auto all = all_lattice_tilings(shapes::straight_polyomino(2));
  EXPECT_GE(all.size(), 2u);
  for (const Sublattice& m : all) {
    EXPECT_TRUE(tiles_by_sublattice(shapes::straight_polyomino(2), m));
  }
}

TEST(LatticeTilingSearch, GapDuoHasNoLatticeTiling) {
  // {(0,0),(2,0)} admits no sublattice tiling (both cells are congruent
  // modulo every index-2 sublattice containing (2,0)-patterns)...
  EXPECT_FALSE(find_lattice_tiling(Prototile::from_ascii({"X.X"}))
                   .has_value());
}

TEST(LatticeTilingSearch, LimitRespected) {
  const auto limited = all_lattice_tilings(shapes::rectangle(2, 2), 1);
  EXPECT_EQ(limited.size(), 1u);
}

TEST(TorusSearch, FindsGapDuoTiling) {
  // The disconnected {(0,0),(2,0)} tile DOES tile the plane (columns
  // x ≡ 0,1 mod 4 pattern) — only the torus search can find it.
  const Prototile gap = Prototile::from_ascii({"X.X"}, "gap-duo");
  const auto t = search_periodic_tiling({gap});
  ASSERT_TRUE(t.has_value());
  std::string err;
  EXPECT_TRUE(t->verify_window(Box::centered(2, 8), &err)) << err;
}

TEST(TorusSearch, FindsSTetrominoTilingOnExplicitTorus) {
  const auto t = find_tiling_on_torus({shapes::s_tetromino()},
                                      Sublattice::diagonal({4, 4}));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->period().index(), 16);
  std::string err;
  EXPECT_TRUE(t->verify_window(Box::centered(2, 8), &err)) << err;
}

TEST(TorusSearch, MixedSZTilingsExist) {
  // Figure 5: tilings mixing S and Z tetrominoes exist.
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto t = find_tiling_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), cfg);
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->is_respectable());
  std::string err;
  EXPECT_TRUE(t->verify_window(Box::centered(2, 8), &err)) << err;
  // Both prototiles genuinely used.
  bool used_s = false, used_z = false;
  for (const auto& [translate, proto] : t->placements()) {
    (proto == 0 ? used_s : used_z) = true;
  }
  EXPECT_TRUE(used_s);
  EXPECT_TRUE(used_z);
}

TEST(TorusSearch, EnumeratesManyMixedTilings) {
  TorusSearchConfig cfg;
  cfg.require_all_prototiles = true;
  const auto all = all_tilings_on_torus(
      {shapes::s_tetromino(), shapes::z_tetromino()},
      Sublattice::diagonal({4, 4}), 1000, cfg);
  // Empirically 40 mixed tilings exist on the 4x4 torus.
  EXPECT_EQ(all.size(), 40u);
}

TEST(TorusSearch, RespectsNodeBudget) {
  // A mixed S+Z tiling of the 4x4 torus needs four placements; a
  // one-node budget (per torus/subtree) can never complete one.
  TorusSearchConfig cfg;
  cfg.node_limit = 1;
  cfg.require_all_prototiles = true;
  const auto t =
      find_tiling_on_torus({shapes::s_tetromino(), shapes::z_tetromino()},
                           Sublattice::diagonal({4, 4}), cfg);
  EXPECT_FALSE(t.has_value());
}

TEST(TorusSearch, ZeroNodeBudgetIsRejected) {
  // node_limit = 0 used to mean "search nothing"; the validated config
  // now rejects it so a zero budget can never silently report "no
  // tiling" for an exact prototile.
  TorusSearchConfig cfg;
  cfg.node_limit = 0;
  EXPECT_THROW(search_periodic_tiling({shapes::s_tetromino()}, cfg),
               std::invalid_argument);
  EXPECT_THROW(find_tiling_on_torus({shapes::s_tetromino()},
                                    Sublattice::diagonal({2, 2}), cfg),
               std::invalid_argument);
  cfg.node_limit = 1;
  cfg.max_period_cells = 0;
  EXPECT_THROW(search_periodic_tiling({shapes::s_tetromino()}, cfg),
               std::invalid_argument);
}

TEST(TorusSearch, STetrominoTilesTinyTorus) {
  // Surprising but true (and hand-verified): S is a complete residue
  // system modulo 2Z x 2Z, so a single placement tiles the 2x2 torus.
  const auto t = find_tiling_on_torus({shapes::s_tetromino()},
                                      Sublattice::diagonal({2, 2}));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->placements().size(), 1u);
  std::string err;
  EXPECT_TRUE(t->verify_window(Box::centered(2, 6), &err)) << err;
}

TEST(TorusSearch, NonExactTileNotFound) {
  // {0,1,3} in a row cannot tile (rows are independent 1-D instances and
  // {0,1,3} does not tile Z); budgeted search must come back empty.
  TorusSearchConfig cfg;
  cfg.max_period_cells = 36;
  cfg.node_limit = 200'000;
  const Prototile t013 = Prototile::from_ascii({"XX.X"}, "013");
  EXPECT_FALSE(search_periodic_tiling({t013}, cfg).has_value());
}

TEST(TorusSearch, DimensionMismatchThrows) {
  EXPECT_THROW(
      find_tiling_on_torus({shapes::s_tetromino()},
                           Sublattice::diagonal({2, 2, 2})),
      std::invalid_argument);
}

TEST(TorusSearch, ThreeDimensionalBlockTiling) {
  // 2x2x2 block tiles the 3-D lattice; search over cubic periods.
  PointVec cells;
  for (std::int64_t x = 0; x < 2; ++x) {
    for (std::int64_t y = 0; y < 2; ++y) {
      for (std::int64_t z = 0; z < 2; ++z) {
        cells.push_back(Point{x, y, z});
      }
    }
  }
  const Prototile block(cells, "block8");
  TorusSearchConfig cfg;
  cfg.max_period_cells = 64;
  const auto t = search_periodic_tiling({block}, cfg);
  ASSERT_TRUE(t.has_value());
  std::string err;
  EXPECT_TRUE(t->verify_window(Box::centered(3, 4), &err)) << err;
}

// Property: every tiling found by either engine passes independent window
// verification (cross-validation of search + Tiling construction).
class SearchedTilingsVerify : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(SearchedTilingsVerify, RandomPolyominoTilingsAreValid) {
  Rng rng(500 + GetParam());
  int found = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Prototile t = test_helpers::random_polyomino(rng, GetParam());
    const auto m = find_lattice_tiling(t);
    if (!m.has_value()) continue;
    ++found;
    const Tiling tiling = Tiling::lattice_tiling(t, *m);
    std::string err;
    EXPECT_TRUE(tiling.verify_window(Box::centered(2, 8), &err))
        << t.to_ascii() << err;
  }
  // Small polyominoes tile often; make sure the sweep exercised something.
  if (GetParam() <= 4) {
    EXPECT_GT(found, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SearchedTilingsVerify,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

}  // namespace
}  // namespace latticesched
