// Auto-tuning subsystem tests: the knob-space currency (TunedConfig
// round-trips), seeded tuner determinism, the `auto` backend's
// delegate-equivalence property, TuneCache persistence (warm hits,
// corrupt-entry eviction) and the acceptance pins — a warm full-registry
// `auto` sweep runs ZERO tuning searches, and a distributed warm `auto`
// sweep serializes byte-identically to the serial one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/plan_service.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "dist/coordinator.hpp"
#include "test_helpers.hpp"
#include "tiling/shapes.hpp"
#include "tune/auto_planner.hpp"
#include "tune/knob_space.hpp"
#include "tune/tune_cache.hpp"
#include "tune/tuner.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace {

using test_helpers::TempDir;
using tune::Fingerprint;
using tune::KnobSpace;
using tune::TuneCache;
using tune::TunedConfig;
using tune::Tuner;
using tune::TuneOptions;

Deployment grid_deployment(std::int64_t n, std::int64_t r) {
  return Deployment::grid(Box::cube(2, 0, n - 1),
                          shapes::chebyshev_ball(2, r));
}

// ---- knob space -----------------------------------------------------------

TEST(KnobSpaceTest, RegistryCoversTunableBackends) {
  const KnobSpace& space = KnobSpace::global();
  EXPECT_FALSE(space.knobs_for("tiling").empty());
  EXPECT_FALSE(space.knobs_for("annealing").empty());
  EXPECT_FALSE(space.knobs_for("region-greedy").empty());
  EXPECT_FALSE(space.knobs_for("").empty());  // session-level knobs
  EXPECT_TRUE(space.knobs_for("tdma").empty());
  EXPECT_TRUE(space.knobs_for("greedy").empty());

  const tune::KnobSpec* node_limit = space.find("tiling", "node_limit");
  ASSERT_NE(node_limit, nullptr);
  EXPECT_GT(node_limit->max, node_limit->min);
  EXPECT_GE(node_limit->def, node_limit->min);
  EXPECT_LE(node_limit->def, node_limit->max);
  EXPECT_EQ(space.find("tiling", "no_such_knob"), nullptr);
}

TEST(KnobSpaceTest, TunedConfigSerializeParseRoundTrip) {
  for (const std::string backend :
       {"tiling", "annealing", "region-greedy", "mobile"}) {
    const TunedConfig config = tune::default_config(backend);
    const std::string text = config.serialize();
    // Token-safe: embeds in whitespace-tokenized cache entries and
    // unquoted CSV cells.
    EXPECT_EQ(text.find(' '), std::string::npos) << text;
    EXPECT_EQ(text.find(','), std::string::npos) << text;
    const auto parsed = TunedConfig::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, config) << text;
  }

  // Values survive exactly, including non-integral ones.
  TunedConfig config = tune::default_config("annealing");
  config.set("sa_initial_temperature", 3.75);
  config.set("sa_max_iters", 50'000.0);
  const auto parsed = TunedConfig::parse(config.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->get("sa_initial_temperature", 0.0), 3.75);
  EXPECT_DOUBLE_EQ(parsed->get("sa_max_iters", 0.0), 50'000.0);
  EXPECT_EQ(*parsed, config);
}

TEST(KnobSpaceTest, MalformedConfigTextParsesToNullopt) {
  EXPECT_FALSE(TunedConfig::parse("").has_value());
  EXPECT_FALSE(TunedConfig::parse("node_limit=5").has_value());  // no backend
  EXPECT_FALSE(TunedConfig::parse("backend=tiling;node_limit").has_value());
  EXPECT_FALSE(
      TunedConfig::parse("backend=tiling;node_limit=xyz").has_value());
}

TEST(KnobSpaceTest, NeighborsStayInRangeAndDifferFromOrigin) {
  const KnobSpace& space = KnobSpace::global();
  for (const std::string backend : {"tiling", "annealing", "region-greedy"}) {
    const TunedConfig origin = tune::default_config(backend);
    const std::vector<TunedConfig> moved = tune::neighbors(origin);
    EXPECT_FALSE(moved.empty()) << backend;
    for (const TunedConfig& c : moved) {
      EXPECT_NE(c, origin) << backend;
      for (const auto& [name, value] : c.values) {
        const tune::KnobSpec* spec = space.find(backend, name);
        ASSERT_NE(spec, nullptr) << backend << "." << name;
        EXPECT_GE(value, spec->min) << backend << "." << name;
        EXPECT_LE(value, spec->max) << backend << "." << name;
      }
    }
  }
}

TEST(KnobSpaceTest, RandomConfigsSeededAndInRange) {
  const KnobSpace& space = KnobSpace::global();
  Rng a(7), b(7);
  for (int i = 0; i < 16; ++i) {
    const TunedConfig ca = tune::random_config("tiling", a);
    const TunedConfig cb = tune::random_config("tiling", b);
    EXPECT_EQ(ca, cb) << "same seed, same stream";
    for (const auto& [name, value] : ca.values) {
      const tune::KnobSpec* spec = space.find("tiling", name);
      ASSERT_NE(spec, nullptr);
      EXPECT_GE(value, spec->min);
      EXPECT_LE(value, spec->max);
    }
  }
}

// ---- tuner ----------------------------------------------------------------

TEST(TunerTest, SeededSearchIsDeterministic) {
  const Deployment d = grid_deployment(6, 1);
  PlanRequest request;
  request.deployment = &d;
  request.verify = false;
  request.sa.max_iters = 5'000;

  TuneOptions options;
  options.trials = 6;

  // Fresh caches on both sides: the cost model prunes from recorded
  // observations, so a shared cache would make run 2 see run 1's data.
  TuneCache cache_a, cache_b;
  const tune::TuneOutcome a =
      Tuner(&PlannerRegistry::global(), &cache_a).search(request, options);
  const tune::TuneOutcome b =
      Tuner(&PlannerRegistry::global(), &cache_b).search(request, options);

  EXPECT_EQ(a.best.serialize(), b.best.serialize());
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].config.serialize(), b.trials[i].config.serialize());
    EXPECT_EQ(a.trials[i].ok, b.trials[i].ok);
    EXPECT_EQ(a.trials[i].effective_period, b.trials[i].effective_period);
    EXPECT_DOUBLE_EQ(a.trials[i].work, b.trials[i].work);
  }
  EXPECT_EQ(cache_a.stats().searches, 1u);
  EXPECT_EQ(cache_a.stats().trials, a.trials.size());
}

TEST(TunerTest, BestNeverLosesToTheDefault) {
  const Deployment d = grid_deployment(6, 1);
  PlanRequest request;
  request.deployment = &d;
  request.verify = false;
  request.sa.max_iters = 5'000;

  TuneCache cache;
  TuneOptions options;
  options.trials = 8;
  const tune::TuneOutcome outcome =
      Tuner(&PlannerRegistry::global(), &cache).search(request, options);
  ASSERT_FALSE(outcome.trials.empty());
  // Trial 0 is THE default (first default-set backend at its defaults).
  const tune::TrialOutcome& def = outcome.trials.front();
  ASSERT_TRUE(def.ok);
  const tune::TrialOutcome* best = nullptr;
  for (const tune::TrialOutcome& t : outcome.trials) {
    if (t.config == outcome.best) best = &t;
  }
  ASSERT_NE(best, nullptr) << "best config must have been measured";
  EXPECT_TRUE(best->ok);
  EXPECT_LE(best->effective_period, def.effective_period);
}

// ---- auto backend ---------------------------------------------------------

TEST(AutoBackend, ProducesValidPlanEquivalentToItsDelegate) {
  const Deployment d = grid_deployment(6, 1);
  TuneCache cache;
  PlanRequest request;
  request.deployment = &d;
  request.tune_cache = &cache;
  request.tune_trials = 4;

  const Planner* auto_planner = PlannerRegistry::global().find("auto");
  ASSERT_NE(auto_planner, nullptr);
  EXPECT_FALSE(auto_planner->in_default_set());

  const PlanResult result = auto_planner->plan(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.backend, "auto");
  EXPECT_TRUE(result.collision_free);
  EXPECT_TRUE(result.verified);
  EXPECT_EQ(result.tuned, "searched");
  EXPECT_GE(result.optimality_gap, 1.0);

  // The stamped config replays: running the delegate explicitly with the
  // same knobs produces the identical slot table.
  const auto config = TunedConfig::parse(result.tuned_config);
  ASSERT_TRUE(config.has_value()) << result.tuned_config;
  const Planner* delegate = PlannerRegistry::global().find(config->backend);
  ASSERT_NE(delegate, nullptr) << config->backend;
  PlanRequest replay;
  replay.deployment = &d;
  tune::apply_config(*config, &replay);
  const PlanResult direct = delegate->plan(replay);
  ASSERT_TRUE(direct.ok) << direct.error;
  EXPECT_EQ(result.slots.period, direct.slots.period);
  EXPECT_EQ(result.slots.slot, direct.slots.slot);

  // Second plan against the same cache: warm hit, same config, no search.
  const std::uint64_t searches_before = cache.stats().searches;
  const PlanResult warm = auto_planner->plan(request);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.tuned, "cache-hit");
  EXPECT_EQ(warm.tuned_config, result.tuned_config);
  EXPECT_EQ(warm.slots.slot, result.slots.slot);
  EXPECT_EQ(cache.stats().searches, searches_before);
}

// ---- tune cache persistence -----------------------------------------------

TEST(TuneCachePersist, WarmHitAcrossProcessesViaDisk) {
  TempDir dir;
  const Fingerprint fp{"grid", 36.0, 1.0, 1.0};
  TunedConfig config = tune::default_config("tiling");
  config.set("node_limit", 5'000'000.0);

  {
    TuneCache writer;
    writer.set_persist_dir(dir.path);
    writer.record_observation(fp, config, 9, 1234.0, 0.5);
    writer.record_winner(fp, config);
  }
  ASSERT_TRUE(std::filesystem::exists(TuneCache::entry_path(dir.path, "grid")));

  TuneCache reader;
  reader.set_persist_dir(dir.path);
  const auto found = reader.find(fp);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, config);
  EXPECT_EQ(reader.stats().hits, 1u);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().misses, 0u);

  // The observations came back too: the cost model can price the config.
  const auto prediction = reader.predict(fp, config);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_DOUBLE_EQ(prediction->period, 9.0);
  EXPECT_DOUBLE_EQ(prediction->work, 1234.0);
}

TEST(TuneCachePersist, CorruptEntryIsEvictedAndRecomputed) {
  TempDir dir;
  const Fingerprint fp{"grid", 36.0, 1.0, 1.0};
  const TunedConfig config = tune::default_config("tiling");

  {
    TuneCache writer;
    writer.set_persist_dir(dir.path);
    writer.record_winner(fp, config);
  }
  const std::string path = TuneCache::entry_path(dir.path, "grid");
  ASSERT_TRUE(std::filesystem::exists(path));

  // Flip one byte past the header — the checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char c = 0;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(c == 'x' ? 'y' : 'x');
  }

  TuneCache reader;
  reader.set_persist_dir(dir.path);
  EXPECT_FALSE(reader.find(fp).has_value());
  EXPECT_EQ(reader.stats().misses, 1u);
  EXPECT_EQ(reader.stats().checksum_failures, 1u);
  EXPECT_FALSE(std::filesystem::exists(path))
      << "corrupt entries are evicted, not retried forever";

  // Recompute + re-record round-trips: the slot is clean again.
  reader.record_winner(fp, config);
  TuneCache verify;
  verify.set_persist_dir(dir.path);
  EXPECT_TRUE(verify.find(fp).has_value());
}

TEST(TuneCachePersist, WriteCorruptionHookModelsTornWrites) {
  TempDir dir;
  const Fingerprint fp{"hex", 24.0, 1.0, 0.8};
  TuneCache writer;
  writer.set_persist_dir(dir.path);
  writer.set_write_corruption_hook(
      [](std::string& bytes) { bytes[bytes.size() / 2] ^= 0x20; });
  writer.record_winner(fp, tune::default_config("tiling"));

  TuneCache reader;
  reader.set_persist_dir(dir.path);
  EXPECT_FALSE(reader.find(fp).has_value());
  EXPECT_EQ(reader.stats().checksum_failures, 1u);
}

// ---- acceptance pins ------------------------------------------------------

TEST(AutoBackend, WarmFullRegistrySweepRunsZeroSearches) {
  // The headline acceptance: after one cold sweep populated the
  // persistent tune cache, a fresh service replanning the full registry
  // with the `auto` backend performs ZERO tuning searches — every family
  // is served from disk.
  TempDir cache_dir;
  PlanService cold_service;
  ScenarioParams params;
  params.n = 6;
  std::vector<BatchItem> items =
      cold_service.registry_batch(params, {"auto"});
  for (BatchItem& item : items) item.tune_trials = 2;

  cold_service.tiling_cache().set_persist_dir(cache_dir.path);
  cold_service.tune_cache().set_persist_dir(cache_dir.path);
  const BatchReport cold = cold_service.run(items);
  ASSERT_TRUE(cold.all_ok());
  EXPECT_GT(cold.tune_searches, 0u);
  EXPECT_GT(cold.tune_trials_run, 0u);

  PlanService warm_service;
  warm_service.tiling_cache().set_persist_dir(cache_dir.path);
  warm_service.tune_cache().set_persist_dir(cache_dir.path);
  const BatchReport warm = warm_service.run(items);
  ASSERT_TRUE(warm.all_ok());
  EXPECT_EQ(warm.tune_misses, 0u);
  EXPECT_EQ(warm.tune_searches, 0u) << "a populated tune cache must "
                                       "serve every family without a search";
  EXPECT_EQ(warm.tune_trials_run, 0u);
  EXPECT_GT(warm.tune_hits, 0u);

  // Same plans, warm or cold: the cache changed the cost, not the answer.
  for (std::size_t i = 0; i < warm.items.size(); ++i) {
    ASSERT_EQ(warm.items[i].results.size(), cold.items[i].results.size());
    for (std::size_t r = 0; r < warm.items[i].results.size(); ++r) {
      EXPECT_EQ(warm.items[i].results[r].tuned_config,
                cold.items[i].results[r].tuned_config)
          << warm.items[i].label;
      EXPECT_EQ(warm.items[i].results[r].slots.period,
                cold.items[i].results[r].slots.period)
          << warm.items[i].label;
    }
  }
}

/// Zeroes every "wall_ms" value (the one legitimately nondeterministic
/// report field) — the same normalization tests/test_dist.cpp pins the
/// distributed service with.
std::string normalize_wall(std::string json) {
  const std::string needle = "\"wall_ms\": ";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    std::size_t end = pos;
    while (end < json.size() && json[end] != ',' && json[end] != '}' &&
           json[end] != '\n') {
      ++end;
    }
    json.replace(pos, end - pos, "0");
    ++pos;
  }
  return json;
}

TEST(AutoBackend, DistributedWarmSweepByteIdenticalToSerial) {
  // Distributed acceptance: with a shared warm --cache-dir, a
  // multi-worker `auto` sweep merges to the byte-identical report a
  // serial run produces — tuned configs, provenance columns and the
  // tuning counter footer included.
  TempDir cache_dir;
  std::vector<BatchItem> items;
  for (const std::string scenario : {"grid", "hex"}) {
    BatchItem item;
    item.query.scenario = scenario;
    item.query.params.n = 6;
    item.backends = {"auto"};
    item.tune_trials = 2;
    items.push_back(item);
  }

  set_parallel_threads(1);
  PlanService cold_service;
  cold_service.tiling_cache().set_persist_dir(cache_dir.path);
  cold_service.tune_cache().set_persist_dir(cache_dir.path);
  ASSERT_TRUE(cold_service.run(items).all_ok());

  PlanService warm_service;
  warm_service.tiling_cache().set_persist_dir(cache_dir.path);
  warm_service.tune_cache().set_persist_dir(cache_dir.path);
  const BatchReport serial = warm_service.run(items);
  ASSERT_TRUE(serial.all_ok());
  EXPECT_EQ(serial.tune_searches, 0u);
  set_parallel_threads(0);

  dist::CoordinatorConfig config;
  config.workers = 2;
  config.cache_dir = cache_dir.path;
  config.worker_exe = LATTICESCHED_CLI_PATH;
  config.worker_threads = 1;
  dist::ShardCoordinator coordinator(config);
  const BatchReport distributed = coordinator.run(items);
  ASSERT_TRUE(distributed.all_ok());
  EXPECT_EQ(distributed.tune_searches, 0u)
      << "a populated tune cache must serve every worker without a search";
  EXPECT_EQ(distributed.tune_hits, serial.tune_hits);

  EXPECT_EQ(normalize_wall(batch_report_to_json(distributed)),
            normalize_wall(batch_report_to_json(serial)));

  std::uint64_t worker_tune_hits = 0;
  for (const dist::WorkerCacheStats& w : coordinator.worker_stats()) {
    worker_tune_hits += w.tune_hits;
    EXPECT_EQ(w.tune_searches, 0u) << "pid " << w.pid;
  }
  EXPECT_EQ(worker_tune_hits, distributed.tune_hits);
}

}  // namespace
}  // namespace latticesched
