// Tests for the table printer, ASCII canvas and CLI parser.
#include <gtest/gtest.h>

#include "util/ascii_canvas.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace latticesched {
namespace {

TEST(Table, AlignsAndRules) {
  Table t({"name", "value"});
  t.begin_row();
  t.cell("alpha");
  t.cell(static_cast<std::int64_t>(42));
  t.begin_row();
  t.cell("b");
  t.cell(7.125, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("7.12"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Right-aligned numeric column: "42" ends where "7.12" ends.
  const auto line1_end = s.find("42\n");
  const auto line2_end = s.find("7.12\n");
  ASSERT_NE(line1_end, std::string::npos);
  ASSERT_NE(line2_end, std::string::npos);
}

TEST(Table, PercentFormatting) {
  Table t({"x", "pct"});
  t.begin_row();
  t.cell("a");
  t.cell_percent(0.256, 1);
  EXPECT_NE(t.to_string().find("25.6%"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CellWithoutRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(AsciiCanvas, OriginAtBottomLeft) {
  AsciiCanvas c(3, 2, '.');
  c.put(0, 0, 'a');
  c.put(2, 1, 'b');
  EXPECT_EQ(c.to_string(), "..b\na..\n");
}

TEST(AsciiCanvas, ClipsOutOfBounds) {
  AsciiCanvas c(2, 2, '.');
  c.put(-1, 0, 'x');
  c.put(0, 5, 'x');
  c.put_text(1, 0, "long-text");
  EXPECT_EQ(c.at(1, 0), 'l');
  EXPECT_EQ(c.at(0, 1), '.');
}

TEST(AsciiCanvas, Lines) {
  AsciiCanvas c(4, 4, ' ');
  c.hline(0, 0, 4, '-');
  c.vline(0, 0, 4, '|');
  EXPECT_EQ(c.at(3, 0), '-');
  EXPECT_EQ(c.at(0, 3), '|');
}

TEST(AsciiCanvas, RejectsZeroSize) {
  EXPECT_THROW(AsciiCanvas(0, 5), std::invalid_argument);
}

TEST(Cli, ParsesAllForms) {
  CliParser p("test");
  p.add_flag("n", "10", "count");
  p.add_flag("rate", "0.5", "rate");
  p.add_flag("verbose", "false", "verbosity");
  p.add_flag("name", "x", "label");
  const char* argv[] = {"prog", "--n=20", "--rate=0.25", "--verbose",
                        "pos1"};
  p.parse(5, argv);
  EXPECT_EQ(p.get_int("n"), 20);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.25);
  EXPECT_TRUE(p.get_bool("verbose"));
  EXPECT_EQ(p.get_string("name"), "x");  // default preserved
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "pos1");
}

TEST(Cli, UnknownFlagThrows) {
  CliParser p("test");
  const char* argv[] = {"prog", "--mystery=1"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, SpaceSeparatedValues) {
  CliParser p("test");
  p.add_flag("n", "10", "count");
  p.add_flag("name", "x", "label");
  p.add_flag("verbose", "false", "verbosity");
  const char* argv[] = {"prog", "--n", "20", "--name", "field",
                        "--verbose", "pos1"};
  p.parse(7, argv);
  EXPECT_EQ(p.get_int("n"), 20);
  EXPECT_EQ(p.get_string("name"), "field");
  // Boolean flags never consume the next token.
  EXPECT_TRUE(p.get_bool("verbose"));
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "pos1");
}

TEST(Cli, SpaceSeparatedMissingValueThrows) {
  CliParser p("test");
  p.add_flag("n", "10", "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(p.parse(2, argv), std::invalid_argument);
}

TEST(Cli, AllUnknownFlagsReportedTogether) {
  CliParser p("test");
  p.add_flag("n", "10", "count");
  const char* argv[] = {"prog", "--typo1=1", "--n=5", "--typo2"};
  try {
    p.parse(4, argv);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--typo1"), std::string::npos);
    EXPECT_NE(msg.find("--typo2"), std::string::npos);
  }
  // Known flags seen before the error still parsed.
  EXPECT_EQ(p.get_int("n"), 5);
}

TEST(Cli, MalformedNumberThrows) {
  CliParser p("test");
  p.add_flag("n", "1", "count");
  const char* argv[] = {"prog", "--n=12abc"};
  p.parse(2, argv);
  EXPECT_THROW(p.get_int("n"), std::invalid_argument);
}

TEST(Cli, HelpRequested) {
  CliParser p("test");
  p.add_flag("n", "1", "count");
  const char* argv[] = {"prog", "--help"};
  p.parse(2, argv);
  EXPECT_TRUE(p.help_requested());
  EXPECT_NE(p.help_text().find("--n"), std::string::npos);
}

TEST(Cli, DuplicateFlagRegistrationThrows) {
  CliParser p("test");
  p.add_flag("n", "1", "count");
  EXPECT_THROW(p.add_flag("n", "2", "again"), std::invalid_argument);
}

TEST(Cli, IntFlagRejectsValuesBelowMinimum) {
  // The driver's --workers contract: 0/negative are parse errors.
  for (const char* bad : {"0", "-3", "2x"}) {
    CliParser p("test");
    p.add_int_flag("workers", 1, 1, "worker processes");
    const std::string arg = std::string("--workers=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    try {
      p.parse(2, argv);
      FAIL() << "expected std::invalid_argument for " << bad;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--workers"), std::string::npos)
          << e.what();
    }
  }
  CliParser ok("test");
  ok.add_int_flag("workers", 1, 1, "worker processes");
  const char* argv[] = {"prog", "--workers", "4"};
  ok.parse(3, argv);
  EXPECT_EQ(ok.get_int("workers"), 4);
}

TEST(Cli, SuggestNearestFindsTypos) {
  const std::vector<std::string> scenarios = {
      "grid", "hex", "cube3d", "mobile", "figure5", "antennas",
      "multichannel", "random-subset", "grid-failures", "mobile-churn"};
  // One edit away.
  EXPECT_EQ(suggest_nearest("gird", scenarios), "grid");
  EXPECT_EQ(suggest_nearest("grib", scenarios), "grid");
  EXPECT_EQ(suggest_nearest("moble", scenarios), "mobile");
  // Longer names get a larger budget.
  EXPECT_EQ(suggest_nearest("grid-failurs", scenarios), "grid-failures");
  EXPECT_EQ(suggest_nearest("multichanel", scenarios), "multichannel");
  // Exact matches are their own suggestion (callers only consult this
  // for UNKNOWN names, but the function stays total).
  EXPECT_EQ(suggest_nearest("hex", scenarios), "hex");
}

TEST(Cli, SuggestNearestStaysQuietOnNonsense) {
  const std::vector<std::string> backends = {"tiling", "greedy", "dsatur",
                                             "tdma"};
  EXPECT_EQ(suggest_nearest("quux-blorp-zzz", backends), "");
  EXPECT_EQ(suggest_nearest("", std::vector<std::string>{}), "");
  // Deterministic tie-break: the earliest candidate wins.
  EXPECT_EQ(suggest_nearest("ax", {"ab", "ac"}), "ab");
}

TEST(Cli, SuggestNearestFindsChaosFlagTypos) {
  // The driver's chaos-hardening flags are long enough that typos are
  // likely; the suggester must bridge them.
  const std::vector<std::string> flags = {
      "workers", "worker-timeout-ms", "retries", "fault-plan",
      "cache-dir", "cache-stats", "shard", "seed"};
  EXPECT_EQ(suggest_nearest("worker-timout-ms", flags), "worker-timeout-ms");
  EXPECT_EQ(suggest_nearest("retrys", flags), "retries");
  EXPECT_EQ(suggest_nearest("falt-plan", flags), "fault-plan");
  EXPECT_EQ(suggest_nearest("worker-timeout", flags), "worker-timeout-ms");
}

TEST(Cli, ChaosFlagMinimaViolationsJoinOneError) {
  // The driver's chaos flags share the joined-error contract: every
  // range violation arrives in the SAME std::invalid_argument.
  CliParser p("test");
  p.add_int_flag("worker-timeout-ms", 30000, 0, "per-frame deadline");
  p.add_int_flag("retries", 2, 0, "respawn budget");
  const char* argv[] = {"prog", "--worker-timeout-ms=-1", "--retries=-2"};
  try {
    p.parse(3, argv);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--worker-timeout-ms"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--retries"), std::string::npos) << msg;
  }
  CliParser ok("test");
  ok.add_int_flag("worker-timeout-ms", 30000, 0, "per-frame deadline");
  ok.add_int_flag("retries", 2, 0, "respawn budget");
  const char* good[] = {"prog", "--worker-timeout-ms=0", "--retries=0"};
  ok.parse(3, good);
  EXPECT_EQ(ok.get_int("worker-timeout-ms"), 0);  // 0 = deadlines off
  EXPECT_EQ(ok.get_int("retries"), 0);
}

TEST(Cli, IntFlagViolationsJoinTheUnknownFlagError) {
  // One round trip fixes everything: the range violation and the typo
  // arrive in the SAME error.
  CliParser p("test");
  p.add_int_flag("workers", 1, 1, "worker processes");
  const char* argv[] = {"prog", "--workers=0", "--typo=1"};
  try {
    p.parse(3, argv);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--typo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--workers"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace latticesched
