// Voronoi cells (paper Figure 4) and box windows.
#include <cmath>

#include <gtest/gtest.h>

#include "lattice/region.hpp"
#include "lattice/voronoi.hpp"

namespace latticesched {
namespace {

TEST(Voronoi, SquareCellIsUnitSquare) {
  const ConvexPolygon cell = voronoi_cell(Lattice::square());
  EXPECT_EQ(cell.vertex_count(), 4u);
  EXPECT_NEAR(cell.area(), 1.0, 1e-9);
  EXPECT_TRUE(cell.contains({0.49, 0.49}));
  EXPECT_FALSE(cell.contains({0.51, 0.0}));
}

TEST(Voronoi, HexCellIsRegularHexagon) {
  const ConvexPolygon cell = voronoi_cell(Lattice::hexagonal());
  EXPECT_EQ(cell.vertex_count(), 6u);
  // Area equals the covolume √3/2.
  EXPECT_NEAR(cell.area(), std::sqrt(3.0) / 2.0, 1e-9);
  // All vertices equidistant from the center (regularity).
  double r0 = -1.0;
  for (const Vec2& v : cell.vertices()) {
    const double r = std::sqrt(v.x * v.x + v.y * v.y);
    if (r0 < 0) {
      r0 = r;
    } else {
      EXPECT_NEAR(r, r0, 1e-9);
    }
  }
  // Circumradius of the hexagonal Voronoi cell is 1/√3.
  EXPECT_NEAR(r0, 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(Voronoi, QuasiPolyformArea) {
  EXPECT_NEAR(quasi_polyform_area(Lattice::square(), 9), 9.0, 1e-12);
  EXPECT_NEAR(quasi_polyform_area(Lattice::hexagonal(), 4),
              4.0 * std::sqrt(3.0) / 2.0, 1e-9);
}

TEST(ConvexPolygon, ClipHalfPlane) {
  ConvexPolygon square = ConvexPolygon::centered_square(1.0);
  EXPECT_NEAR(square.area(), 4.0, 1e-12);
  const ConvexPolygon half = square.clip_half_plane({1.0, 0.0}, 0.0);
  EXPECT_NEAR(half.area(), 2.0, 1e-9);
  const ConvexPolygon none = square.clip_half_plane({1.0, 0.0}, -2.0);
  EXPECT_TRUE(none.empty());
}

TEST(ConvexPolygon, DistanceTo) {
  const ConvexPolygon square = ConvexPolygon::centered_square(1.0);
  EXPECT_DOUBLE_EQ(square.distance_to({0.0, 0.0}), 0.0);
  EXPECT_NEAR(square.distance_to({2.0, 0.0}), 1.0, 1e-9);
  EXPECT_NEAR(square.distance_to({2.0, 2.0}), std::sqrt(2.0), 1e-9);
}

TEST(ConvexPolygon, TranslatedPreservesShape) {
  const ConvexPolygon square = ConvexPolygon::centered_square(1.0);
  const ConvexPolygon moved = square.translated({5.0, -3.0});
  EXPECT_NEAR(moved.area(), square.area(), 1e-12);
  EXPECT_TRUE(moved.contains({5.0, -3.0}));
  EXPECT_FALSE(moved.contains({0.0, 0.0}));
}

TEST(Voronoi, RejectsNon2D) {
  EXPECT_THROW(voronoi_cell(Lattice::cubic(3)), std::invalid_argument);
}

TEST(Box, SizeAndContains) {
  const Box b = Box::cube(2, -1, 2);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_EQ(b.extent(0), 4);
  EXPECT_TRUE(b.contains(Point{0, 0}));
  EXPECT_TRUE(b.contains(Point{-1, 2}));
  EXPECT_FALSE(b.contains(Point{3, 0}));
  EXPECT_FALSE(b.contains(Point{0, 0, 0}));
}

TEST(Box, PointsLexicographicAndComplete) {
  const Box b = Box(Point{0, 0}, Point{1, 2});
  const PointVec pts = b.points();
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts.front(), (Point{0, 0}));
  EXPECT_EQ(pts.back(), (Point{1, 2}));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1], pts[i]) << "must be lexicographically sorted";
  }
}

TEST(Box, SinglePoint) {
  const Box b = Box(Point{3, 3}, Point{3, 3});
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.points().size(), 1u);
}

TEST(Box, ExpandAndTranslate) {
  const Box b = Box::centered(2, 1);
  const Box e = b.expanded(2);
  EXPECT_EQ(e.lo(), (Point{-3, -3}));
  EXPECT_EQ(e.hi(), (Point{3, 3}));
  const Box t = b.translated(Point{10, 0});
  EXPECT_TRUE(t.contains(Point{10, 0}));
  EXPECT_FALSE(t.contains(Point{0, 0}));
}

TEST(Box, InvalidCornersThrow) {
  EXPECT_THROW(Box(Point{1, 0}, Point{0, 0}), std::invalid_argument);
  EXPECT_THROW(Box(Point{0}, Point{0, 0}), std::invalid_argument);
}

TEST(Box, ForEachVisitsAllOnce) {
  const Box b = Box::cube(3, 0, 2);
  PointSet seen;
  b.for_each([&](const Point& p) {
    EXPECT_TRUE(seen.insert(p).second);
  });
  EXPECT_EQ(seen.size(), 27u);
}

}  // namespace
}  // namespace latticesched
