// Wire-protocol hardening: truncated frames, oversized length
// prefixes, unknown verbs and garbage bodies must surface as clean
// errors — read_frame returning false, the worker answering ERROR —
// never a crash or an unbounded allocation.  Runs under the ASan job
// like the rest of the suite.
//
// The TCP section drives the same frame layer over real AF_INET
// loopback sockets (via src/serve): throttled drip reads, partial
// writes through a full send buffer, pre-handshake garbage, truncated
// v6 frames, and unknown session verbs against a live PlanServer.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/report.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "serve/server.hpp"
#include "serve/tcp.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace {

using dist::WireMessage;

struct Socketpair {
  int a = -1, b = -1;
  Socketpair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
      a = fds[0];
      b = fds[1];
    }
  }
  ~Socketpair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    if (a >= 0) ::close(a);
    a = -1;
  }
};

void write_raw(int fd, const void* data, std::size_t len) {
  ASSERT_EQ(::write(fd, data, len), static_cast<ssize_t>(len));
}

void write_prefix(int fd, std::uint32_t len) {
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff)};
  write_raw(fd, prefix, sizeof prefix);
}

TEST(WireFuzz, TruncatedPrefixIsCleanEof) {
  Socketpair pair;
  ASSERT_GE(pair.a, 0);
  write_raw(pair.a, "\x05\x00", 2);  // half a length prefix
  pair.close_a();
  WireMessage message;
  EXPECT_FALSE(dist::read_frame(pair.b, &message));
}

TEST(WireFuzz, TruncatedPayloadIsCleanEof) {
  Socketpair pair;
  ASSERT_GE(pair.a, 0);
  write_prefix(pair.a, 64);
  write_raw(pair.a, "HELLO\nonly-part-of-the-body", 27);
  pair.close_a();
  WireMessage message;
  EXPECT_FALSE(dist::read_frame(pair.b, &message));
}

TEST(WireFuzz, OversizedLengthPrefixIsRejectedNotAllocated) {
  for (const std::uint32_t len :
       {dist::kMaxFrameBytes + 1, 0xffffffffu, 0x80000000u}) {
    Socketpair pair;
    ASSERT_GE(pair.a, 0);
    write_prefix(pair.a, len);
    // No payload follows — a reader that trusted the prefix would try
    // to allocate and block on gigabytes.
    pair.close_a();
    WireMessage message;
    EXPECT_FALSE(dist::read_frame(pair.b, &message)) << len;
  }
}

TEST(WireFuzz, ZeroLengthAndEmptyVerbFramesAreRejected) {
  {
    Socketpair pair;
    write_prefix(pair.a, 0);
    pair.close_a();
    WireMessage message;
    EXPECT_FALSE(dist::read_frame(pair.b, &message));
  }
  {
    // "\nbody": newline first => empty verb.
    Socketpair pair;
    write_prefix(pair.a, 5);
    write_raw(pair.a, "\nbody", 5);
    pair.close_a();
    WireMessage message;
    EXPECT_FALSE(dist::read_frame(pair.b, &message));
  }
}

TEST(WireFuzz, FrameWithoutNewlineIsVerbOnly) {
  Socketpair pair;
  write_prefix(pair.a, 8);
  write_raw(pair.a, "SHUTDOWN", 8);
  WireMessage message;
  ASSERT_TRUE(dist::read_frame(pair.b, &message));
  EXPECT_EQ(message.verb, "SHUTDOWN");
  EXPECT_TRUE(message.body.empty());
}

TEST(WireFuzz, RandomGarbageStreamsNeverCrashTheReader) {
  Rng rng(1234);
  for (int round = 0; round < 32; ++round) {
    Socketpair pair;
    ASSERT_GE(pair.a, 0);
    std::string garbage(1 + rng.next_below(512), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.next_below(256));
    }
    write_raw(pair.a, garbage.data(), garbage.size());
    pair.close_a();
    // Drain until EOF/error; each frame either parses or cleanly fails.
    WireMessage message;
    int frames = 0;
    while (dist::read_frame(pair.b, &message) && frames < 64) ++frames;
  }
}

/// Drives the REAL worker loop in-process over a socketpair and
/// returns its exit code (the worker thread owns fd `b`).
int run_worker_with(const std::vector<std::string>& raw_frames,
                    std::vector<WireMessage>* responses) {
  Socketpair pair;
  if (pair.a < 0) return -1;
  int exit_code = -1;
  // The thread closes its own fd when the loop exits so the reader
  // below sees EOF after draining the worker's replies.
  std::thread worker([&] {
    exit_code = dist::run_worker(pair.b, {});
    ::close(pair.b);
    pair.b = -1;
  });
  WireMessage hello;
  EXPECT_TRUE(dist::read_frame(pair.a, &hello));
  EXPECT_EQ(hello.verb, "HELLO");
  for (const std::string& payload : raw_frames) {
    // MSG_NOSIGNAL: a worker that already exited must surface as a
    // failed send, not SIGPIPE in the test binary.
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(len & 0xff),
        static_cast<unsigned char>((len >> 8) & 0xff),
        static_cast<unsigned char>((len >> 16) & 0xff),
        static_cast<unsigned char>((len >> 24) & 0xff)};
    if (::send(pair.a, prefix, sizeof prefix, MSG_NOSIGNAL) != 4 ||
        ::send(pair.a, payload.data(), payload.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(payload.size())) {
      break;
    }
  }
  WireMessage reply;
  while (dist::read_frame(pair.a, &reply)) {
    responses->push_back(reply);
  }
  pair.close_a();
  worker.join();
  return exit_code;
}

TEST(WireFuzz, WorkerAnswersUnknownVerbWithErrorAndExits) {
  std::vector<WireMessage> responses;
  const int code = run_worker_with({"FROBNICATE\nstuff"}, &responses);
  EXPECT_EQ(code, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].verb, "ERROR");
  EXPECT_NE(responses[0].body.find("FROBNICATE"), std::string::npos);
}

TEST(WireFuzz, WorkerAnswersGarbageAssignBodyWithErrorNotCrash) {
  // A scenario line with unparseable numbers: parse_batch_items_json
  // throws, the worker reports ERROR and exits nonzero.
  const std::string garbage_items =
      "[\n  {\"scenario\": \"grid\", \"n\": twelve}\n]\n";
  std::vector<WireMessage> responses;
  const int code =
      run_worker_with({"ASSIGN\n0\n" + garbage_items}, &responses);
  EXPECT_EQ(code, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].verb, "ERROR");
}

TEST(WireFuzz, WorkerSurvivesEmptyAssignmentAndShutsDownCleanly) {
  std::vector<WireMessage> responses;
  const int code =
      run_worker_with({"ASSIGN\n7\n[\n]\n", "SHUTDOWN"}, &responses);
  EXPECT_EQ(code, 0);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].verb, "RESULT");
  EXPECT_EQ(responses[0].body.substr(0, 2), "7\n");
}

// ---------------------------------------------------------------------------
// TCP transport: the frame layer over real AF_INET loopback sockets.
// ---------------------------------------------------------------------------

/// A connected loopback pair: `client` from tcp_connect, `server` from
/// the listener's accept.  Both nonblocking, as the serve stack uses.
struct TcpPair {
  serve::TcpListener listener{"127.0.0.1", 0};
  int client = -1;
  int server = -1;
  TcpPair() {
    client = serve::tcp_connect("127.0.0.1", listener.port(), 2000);
    server = listener.accept_connection(2000);
  }
  ~TcpPair() {
    if (client >= 0) ::close(client);
    if (server >= 0) ::close(server);
  }
};

TEST(WireFuzzTcp, DrippedFrameAssemblesUnderDeadline) {
  // Throttled loopback: the frame arrives a few bytes at a time with
  // real gaps, so read_frame_deadline must poll through many short
  // reads (EAGAIN on a nonblocking TCP fd) without losing bytes.
  TcpPair pair;
  ASSERT_GE(pair.client, 0);
  ASSERT_GE(pair.server, 0);
  const std::string payload = "ASSIGN\n" + std::string(257, 'x');
  std::string raw;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    raw.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  raw += payload;
  std::thread dripper([&] {
    for (std::size_t at = 0; at < raw.size(); at += 7) {
      const std::size_t n = std::min<std::size_t>(7, raw.size() - at);
      ASSERT_EQ(::send(pair.client, raw.data() + at, n, MSG_NOSIGNAL),
                static_cast<ssize_t>(n));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  WireMessage message;
  EXPECT_EQ(dist::read_frame_deadline(pair.server, &message, 10000),
            dist::WireIoStatus::kOk);
  EXPECT_EQ(message.verb, "ASSIGN");
  EXPECT_EQ(message.body.size(), 257u);
  dripper.join();
}

TEST(WireFuzzTcp, LargeFrameSurvivesPartialWritesBothDirections) {
  // A multi-megabyte body cannot fit the socket send buffer, so the
  // writer hits partial writes + EAGAIN and must poll; the reader
  // drains concurrently.  Blocking-form write_frame/read_frame must
  // also cope, since serve fds are permanently O_NONBLOCK.
  TcpPair pair;
  ASSERT_GE(pair.client, 0);
  ASSERT_GE(pair.server, 0);
  WireMessage big{"RESULT", std::string(8u << 20, 'r')};
  big.body[1234567] = 'Q';
  std::thread writer([&] {
    EXPECT_EQ(dist::write_frame_deadline(pair.client, big, 20000),
              dist::WireIoStatus::kOk);
    WireMessage echo;
    EXPECT_TRUE(dist::read_frame(pair.client, &echo));
    EXPECT_EQ(echo.body, big.body);
  });
  WireMessage received;
  EXPECT_EQ(dist::read_frame_deadline(pair.server, &received, 20000),
            dist::WireIoStatus::kOk);
  EXPECT_EQ(received.verb, "RESULT");
  EXPECT_EQ(received.body.size(), big.body.size());
  EXPECT_EQ(received.body[1234567], 'Q');
  EXPECT_TRUE(dist::write_frame(pair.server, received));
  writer.join();
}

TEST(WireFuzzTcp, DeadlineExpiresOnStalledPeer) {
  TcpPair pair;
  ASSERT_GE(pair.server, 0);
  // Nothing ever arrives: the read must time out, not spin or hang.
  WireMessage message;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(dist::read_frame_deadline(pair.server, &message, 100),
            dist::WireIoStatus::kTimeout);
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::seconds(5));
}

/// A server running for the duration of one test.
struct ServeFixture {
  serve::PlanServer server{serve::ServerConfig{}};
  ServeFixture() { server.start(); }
  ~ServeFixture() { server.stop(); }
  int connect() {
    return serve::tcp_connect("127.0.0.1", server.port(), 2000);
  }
  /// Reads the server HELLO off a fresh fd.
  void handshake(int fd) {
    WireMessage hello;
    ASSERT_EQ(dist::read_frame_deadline(fd, &hello, 5000),
              dist::WireIoStatus::kOk);
    ASSERT_EQ(hello.verb, "HELLO");
    ASSERT_NE(hello.body.find("\"role\": \"server\""), std::string::npos);
  }
};

TEST(WireFuzzTcp, GarbagePreHandshakeClosesConnectionNotServer) {
  ServeFixture fx;
  Rng rng(99);
  for (int round = 0; round < 8; ++round) {
    const int fd = fx.connect();
    ASSERT_GE(fd, 0);
    fx.handshake(fd);
    std::string garbage(1 + rng.next_below(256), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.next_below(256));
    (void)::send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL);
    // The server either answers ERROR (the garbage parsed as a frame
    // with an unknown verb) or drops the connection (lost framing);
    // either way it must never crash.
    ::close(fd);
  }
  // Still alive: a clean client gets a clean HELLO and a PONG.
  const int fd = fx.connect();
  ASSERT_GE(fd, 0);
  fx.handshake(fd);
  ASSERT_EQ(dist::write_frame_deadline(fd, {"PING", ""}, 2000),
            dist::WireIoStatus::kOk);
  WireMessage pong;
  ASSERT_EQ(dist::read_frame_deadline(fd, &pong, 5000),
            dist::WireIoStatus::kOk);
  EXPECT_EQ(pong.verb, "PONG");
  ::close(fd);
}

TEST(WireFuzzTcp, TruncatedSessionFrameClosesConnectionCleanly) {
  ServeFixture fx;
  const int fd = fx.connect();
  ASSERT_GE(fd, 0);
  fx.handshake(fd);
  // A v6 frame that promises 64 bytes and delivers 11: framing is lost,
  // so the server must close rather than stall or misparse.
  const unsigned char prefix[4] = {64, 0, 0, 0};
  ASSERT_EQ(::send(fd, prefix, 4, MSG_NOSIGNAL), 4);
  ASSERT_EQ(::send(fd, "OPEN\ntoken\n", 11, MSG_NOSIGNAL), 11);
  ::shutdown(fd, SHUT_WR);
  WireMessage reply;
  EXPECT_EQ(dist::read_frame_deadline(fd, &reply, 5000),
            dist::WireIoStatus::kClosed);
  ::close(fd);
  // The listener still accepts.
  const int fd2 = fx.connect();
  ASSERT_GE(fd2, 0);
  fx.handshake(fd2);
  ::close(fd2);
}

TEST(WireFuzzTcp, UnknownSessionVerbAnswersErrorAndKeepsConnection) {
  ServeFixture fx;
  const int fd = fx.connect();
  ASSERT_GE(fd, 0);
  fx.handshake(fd);
  ASSERT_EQ(dist::write_frame_deadline(fd, {"FROBNICATE", "v6?"}, 2000),
            dist::WireIoStatus::kOk);
  WireMessage reply;
  ASSERT_EQ(dist::read_frame_deadline(fd, &reply, 5000),
            dist::WireIoStatus::kOk);
  EXPECT_EQ(reply.verb, "ERROR");
  EXPECT_NE(reply.body.find("FROBNICATE"), std::string::npos);
  // Same connection keeps working — a typo must not kill a session
  // stream.
  ASSERT_EQ(dist::write_frame_deadline(fd, {"PING", ""}, 2000),
            dist::WireIoStatus::kOk);
  ASSERT_EQ(dist::read_frame_deadline(fd, &reply, 5000),
            dist::WireIoStatus::kOk);
  EXPECT_EQ(reply.verb, "PONG");
  ::close(fd);
}

TEST(WireFuzzTcp, MalformedSessionBodiesAnswerErrorNotCrash) {
  ServeFixture fx;
  const int fd = fx.connect();
  ASSERT_GE(fd, 0);
  fx.handshake(fd);
  const std::vector<WireMessage> bad = {
      {"OPEN", "tok\n[\n  {\"scenario\": \"no-such-scenario\"}\n]\n"},
      {"DELTA", "not-a-number 0\nnext"},
      {"DELTA", "77"},  // missing seq
      {"REPLAN", "123456"},
      {"SUBSCRIBE", "garbage"},
      {"CLOSE", "99"},
  };
  for (const WireMessage& message : bad) {
    ASSERT_EQ(dist::write_frame_deadline(fd, message, 2000),
              dist::WireIoStatus::kOk)
        << message.verb;
    WireMessage reply;
    ASSERT_EQ(dist::read_frame_deadline(fd, &reply, 10000),
              dist::WireIoStatus::kOk)
        << message.verb;
    EXPECT_EQ(reply.verb, "ERROR") << message.verb;
  }
  ::close(fd);
}

TEST(WireFuzz, BatchItemParsersRejectGarbageWithCleanErrors) {
  // Lines that LOOK like items but carry malformed values must throw,
  // not crash or silently mis-parse.
  EXPECT_THROW(
      (void)parse_batch_items_json("{\"scenario\": \"grid\", \"n\": }\n"),
      std::exception);
  EXPECT_THROW((void)parse_batch_items_json(
                   "{\"scenario\": \"grid\", \"n\": 99999999999999999999, "
                   "\"radius\": 1}\n"),
               std::exception);
  // Garbage without a scenario key parses to an empty batch.
  EXPECT_TRUE(parse_batch_items_json("hello\nworld\n").empty());
  // Batch reports: truncated/garbage inputs throw.
  EXPECT_THROW((void)parse_batch_report_json(""), std::invalid_argument);
  EXPECT_THROW((void)parse_batch_report_json("{\"items\": [\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
