// Wire-protocol hardening: truncated frames, oversized length
// prefixes, unknown verbs and garbage bodies must surface as clean
// errors — read_frame returning false, the worker answering ERROR —
// never a crash or an unbounded allocation.  Runs under the ASan job
// like the rest of the suite.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/report.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "util/rng.hpp"

namespace latticesched {
namespace {

using dist::WireMessage;

struct Socketpair {
  int a = -1, b = -1;
  Socketpair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
      a = fds[0];
      b = fds[1];
    }
  }
  ~Socketpair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    if (a >= 0) ::close(a);
    a = -1;
  }
};

void write_raw(int fd, const void* data, std::size_t len) {
  ASSERT_EQ(::write(fd, data, len), static_cast<ssize_t>(len));
}

void write_prefix(int fd, std::uint32_t len) {
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff)};
  write_raw(fd, prefix, sizeof prefix);
}

TEST(WireFuzz, TruncatedPrefixIsCleanEof) {
  Socketpair pair;
  ASSERT_GE(pair.a, 0);
  write_raw(pair.a, "\x05\x00", 2);  // half a length prefix
  pair.close_a();
  WireMessage message;
  EXPECT_FALSE(dist::read_frame(pair.b, &message));
}

TEST(WireFuzz, TruncatedPayloadIsCleanEof) {
  Socketpair pair;
  ASSERT_GE(pair.a, 0);
  write_prefix(pair.a, 64);
  write_raw(pair.a, "HELLO\nonly-part-of-the-body", 27);
  pair.close_a();
  WireMessage message;
  EXPECT_FALSE(dist::read_frame(pair.b, &message));
}

TEST(WireFuzz, OversizedLengthPrefixIsRejectedNotAllocated) {
  for (const std::uint32_t len :
       {dist::kMaxFrameBytes + 1, 0xffffffffu, 0x80000000u}) {
    Socketpair pair;
    ASSERT_GE(pair.a, 0);
    write_prefix(pair.a, len);
    // No payload follows — a reader that trusted the prefix would try
    // to allocate and block on gigabytes.
    pair.close_a();
    WireMessage message;
    EXPECT_FALSE(dist::read_frame(pair.b, &message)) << len;
  }
}

TEST(WireFuzz, ZeroLengthAndEmptyVerbFramesAreRejected) {
  {
    Socketpair pair;
    write_prefix(pair.a, 0);
    pair.close_a();
    WireMessage message;
    EXPECT_FALSE(dist::read_frame(pair.b, &message));
  }
  {
    // "\nbody": newline first => empty verb.
    Socketpair pair;
    write_prefix(pair.a, 5);
    write_raw(pair.a, "\nbody", 5);
    pair.close_a();
    WireMessage message;
    EXPECT_FALSE(dist::read_frame(pair.b, &message));
  }
}

TEST(WireFuzz, FrameWithoutNewlineIsVerbOnly) {
  Socketpair pair;
  write_prefix(pair.a, 8);
  write_raw(pair.a, "SHUTDOWN", 8);
  WireMessage message;
  ASSERT_TRUE(dist::read_frame(pair.b, &message));
  EXPECT_EQ(message.verb, "SHUTDOWN");
  EXPECT_TRUE(message.body.empty());
}

TEST(WireFuzz, RandomGarbageStreamsNeverCrashTheReader) {
  Rng rng(1234);
  for (int round = 0; round < 32; ++round) {
    Socketpair pair;
    ASSERT_GE(pair.a, 0);
    std::string garbage(1 + rng.next_below(512), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.next_below(256));
    }
    write_raw(pair.a, garbage.data(), garbage.size());
    pair.close_a();
    // Drain until EOF/error; each frame either parses or cleanly fails.
    WireMessage message;
    int frames = 0;
    while (dist::read_frame(pair.b, &message) && frames < 64) ++frames;
  }
}

/// Drives the REAL worker loop in-process over a socketpair and
/// returns its exit code (the worker thread owns fd `b`).
int run_worker_with(const std::vector<std::string>& raw_frames,
                    std::vector<WireMessage>* responses) {
  Socketpair pair;
  if (pair.a < 0) return -1;
  int exit_code = -1;
  // The thread closes its own fd when the loop exits so the reader
  // below sees EOF after draining the worker's replies.
  std::thread worker([&] {
    exit_code = dist::run_worker(pair.b, {});
    ::close(pair.b);
    pair.b = -1;
  });
  WireMessage hello;
  EXPECT_TRUE(dist::read_frame(pair.a, &hello));
  EXPECT_EQ(hello.verb, "HELLO");
  for (const std::string& payload : raw_frames) {
    // MSG_NOSIGNAL: a worker that already exited must surface as a
    // failed send, not SIGPIPE in the test binary.
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(len & 0xff),
        static_cast<unsigned char>((len >> 8) & 0xff),
        static_cast<unsigned char>((len >> 16) & 0xff),
        static_cast<unsigned char>((len >> 24) & 0xff)};
    if (::send(pair.a, prefix, sizeof prefix, MSG_NOSIGNAL) != 4 ||
        ::send(pair.a, payload.data(), payload.size(), MSG_NOSIGNAL) !=
            static_cast<ssize_t>(payload.size())) {
      break;
    }
  }
  WireMessage reply;
  while (dist::read_frame(pair.a, &reply)) {
    responses->push_back(reply);
  }
  pair.close_a();
  worker.join();
  return exit_code;
}

TEST(WireFuzz, WorkerAnswersUnknownVerbWithErrorAndExits) {
  std::vector<WireMessage> responses;
  const int code = run_worker_with({"FROBNICATE\nstuff"}, &responses);
  EXPECT_EQ(code, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].verb, "ERROR");
  EXPECT_NE(responses[0].body.find("FROBNICATE"), std::string::npos);
}

TEST(WireFuzz, WorkerAnswersGarbageAssignBodyWithErrorNotCrash) {
  // A scenario line with unparseable numbers: parse_batch_items_json
  // throws, the worker reports ERROR and exits nonzero.
  const std::string garbage_items =
      "[\n  {\"scenario\": \"grid\", \"n\": twelve}\n]\n";
  std::vector<WireMessage> responses;
  const int code =
      run_worker_with({"ASSIGN\n0\n" + garbage_items}, &responses);
  EXPECT_EQ(code, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].verb, "ERROR");
}

TEST(WireFuzz, WorkerSurvivesEmptyAssignmentAndShutsDownCleanly) {
  std::vector<WireMessage> responses;
  const int code =
      run_worker_with({"ASSIGN\n7\n[\n]\n", "SHUTDOWN"}, &responses);
  EXPECT_EQ(code, 0);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].verb, "RESULT");
  EXPECT_EQ(responses[0].body.substr(0, 2), "7\n");
}

TEST(WireFuzz, BatchItemParsersRejectGarbageWithCleanErrors) {
  // Lines that LOOK like items but carry malformed values must throw,
  // not crash or silently mis-parse.
  EXPECT_THROW(
      (void)parse_batch_items_json("{\"scenario\": \"grid\", \"n\": }\n"),
      std::exception);
  EXPECT_THROW((void)parse_batch_items_json(
                   "{\"scenario\": \"grid\", \"n\": 99999999999999999999, "
                   "\"radius\": 1}\n"),
               std::exception);
  // Garbage without a scenario key parses to an empty batch.
  EXPECT_TRUE(parse_batch_items_json("hello\nworld\n").empty());
  // Batch reports: truncated/garbage inputs throw.
  EXPECT_THROW((void)parse_batch_report_json(""), std::invalid_argument);
  EXPECT_THROW((void)parse_batch_report_json("{\"items\": [\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace latticesched
